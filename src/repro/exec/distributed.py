"""Sharded distributed execution: exchange pipelines over a modeled network.

The distributed scheduler executes the same compiled pipeline programs
(:func:`~repro.exec.pipeline.compile_pipelines`) as the batch and
morsel-parallel engines, but places the work on ``N`` virtual *nodes*:
each shard of a :class:`~repro.storage.sharded.ShardedTable` is pinned to
node ``shard % nodes`` and its scan->filter->partial-aggregate fragment
runs node-local, charging node-local page I/O and per-morsel compute.
Between fragments, data moves through **exchanges** over the
:class:`~repro.common.simtime.NetworkModel`:

* **shuffle** — wide GROUP BY repartitions per-morsel aggregate partials
  by group-key hash across the nodes (``AggregateOp.split_partial`` with
  a process-independent :func:`~repro.common.rng.stable_hash`), each node
  merges its partitions, and the merged partitions funnel to the
  coordinator for final reassembly;
* **broadcast** — a hash join's built table ships once from the
  coordinator to every node that runs probe-side scan fragments;
* **gather** — shard-local results (scan output blocks, sort runs, build
  parts, narrow aggregate partials) funnel to the coordinator, node 0.

**Determinism and parity are the contract**, mirrored from the parallel
engine and enforced by ``tests/test_distributed.py`` plus the sharded
shapes in ``tests/test_batch_parity.py``:

* The scheduler is **fully serial** — no threads.  Shards, morsels, and
  merges are processed in canonical shard-major order at every node
  count, so result rows (values, Python types, order) are bit-identical
  to the serial engines, and aggregate float state replays raw values in
  global morsel order (never adds subtotals).
* Every morsel charges a private shard clock (``clock.shard()``) and
  every shard's page touches charge a per-shard page clock; all of them
  are folded into the query's shared clock in the same canonical order
  regardless of ``nodes`` and ``workers``.  Per-category charged
  **compute** totals are therefore bit-identical across every
  node/worker configuration.  Only the network categories (``shuffle``,
  ``broadcast``, ``gather``, ``exchange-msg``) vary with the node count
  — they are exactly zero at ``nodes=1``, where every transfer is
  node-local.
* The **makespan** is modeled, not charged twice: per pipeline phase,
  each node serially performs its shards' page I/O and then
  list-schedules its morsel tasks onto ``workers`` lanes
  (:class:`~repro.common.simtime.LaneSchedule`); the phase costs the max
  over nodes.  Exchange makespans come from the network model's NIC
  placement, and the coordinator's serial lane (merges, serial
  operators) adds its full time.  ``modeled_speedup`` is charged total
  over makespan — the scale-out curve ``benchmarks/
  test_distributed_scaling.py`` sweeps.
* A plan containing LIMIT runs entirely on the coordinator lane (the
  same early-termination argument as the parallel engine): eager
  distributed dispatch would scan rows the serial engines never touch.

**Faults**: the scheduler consults the ``slow_node`` fault kind — a
per-task latency spike targeted at ``node<i>`` — to model stragglers:
results stay bit-identical while the slow node's phase times (and the
query makespan) inflate.  Storage-level kinds (``replica_down``) keep
working through the shard tables' own replica failover.  The parallel
engine's worker-crash/retry machinery is intentionally out of scope
here: the distributed model is about *placement*, not thread recovery.
"""

from __future__ import annotations

from typing import Any

from repro.common import categories as cat
from repro.common.faults import FaultPlan
from repro.common.rng import stable_hash
from repro.common.simtime import (BudgetExceeded, LaneSchedule, NetworkModel,
                                  SimClock)
from repro.exec import operators as ops
from repro.exec import pipeline as pl
from repro.exec.batch import RowBlock
from repro.exec.parallel import (DEFAULT_MORSEL_ROWS, DEFAULT_WORKERS,
                                 _CHILD_ATTRS)

DEFAULT_NODES = 4

#: the coordinator: merges, serial operators, and the query result live here
COORDINATOR = 0

#: modeled wire size per value by column kind (typed columns ship their
#: fixed-width representation; dictionary/object columns a pointer-ish 16)
_BYTES_BY_KIND = {"i8": 8, "f8": 8, "bool": 1}
_DEFAULT_VALUE_BYTES = 16


def block_bytes(block: RowBlock) -> int:
    """Modeled on-the-wire size of one block (deterministic, kind-based)."""
    n = len(block)
    if n == 0:
        return 0
    if not block.kinds:
        return 8 * n
    return sum(_BYTES_BY_KIND.get(kind, _DEFAULT_VALUE_BYTES) * n
               for kind in block.kinds)


def payload_units(value: Any) -> int:
    """Scalar-leaf count of an arbitrary exchange payload (aggregate
    partials, sort runs, build parts): deterministic structural size, 8
    modeled bytes per unit."""
    if isinstance(value, dict):
        return sum(payload_units(k) + payload_units(v)
                   for k, v in value.items()) or 1
    if isinstance(value, (list, tuple)):
        return sum(payload_units(v) for v in value) or 1
    return 1


def payload_bytes(value: Any) -> int:
    return 8 * payload_units(value)


class DistributedScheduler:
    """Places a compiled pipeline program on N virtual nodes.

    ``run(operator)`` returns ``(blocks, stats)`` exactly like
    :class:`~repro.exec.parallel.MorselScheduler`; the stats dict carries
    the exchange log and per-node timings.  Single-use, like the operator
    tree it drives.
    """

    def __init__(self, clock: SimClock, nodes: int = DEFAULT_NODES,
                 workers: int = DEFAULT_WORKERS,
                 morsel_rows: int = DEFAULT_MORSEL_ROWS,
                 faults: FaultPlan | None = None,
                 registry=None):
        if nodes < 1:
            raise ValueError(f"nodes must be >= 1, got {nodes}")
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        if morsel_rows < 1:
            raise ValueError(f"morsel_rows must be >= 1, got {morsel_rows}")
        self.nodes = nodes
        self.workers = workers
        self.morsel_rows = morsel_rows
        self._clock = clock
        self._tracer = clock.tracer
        self._network = NetworkModel(nodes)
        self.faults = faults
        self._fault_scope = faults.scope("dist") if faults is not None else ""
        self._registry = registry
        # the coordinator's serial lane; merged into the shared clock last
        self._lane = clock.shard()
        # every page/task shard clock, in canonical creation order — the
        # fold order is a pure function of the plan and the data, never of
        # the node or worker count (the bit-identity invariant)
        self._shard_clocks: list[SimClock] = []
        self.tasks_dispatched = 0
        self._phase_no = 0
        self._phase_makespan = 0.0
        self._exchange_makespan = 0.0
        self._network_seconds = 0.0
        self.exchanges: list[dict] = []
        self._node_tasks = [0] * nodes
        self._node_io = [0.0] * nodes
        self._node_compute = [0.0] * nodes
        self._node_busy = [0.0] * nodes
        self._node_net = [{"rows_sent": 0, "bytes_sent": 0,
                           "rows_received": 0, "bytes_received": 0,
                           "nic_queued": 0} for _ in range(nodes)]
        # hash-join build payload sizes, recorded at merge time so the
        # probe pipeline can charge its broadcast
        self._build_payloads: dict[int, tuple[int, int]] = {}

    # -- public entry ------------------------------------------------------

    def run(self, operator: ops.Operator) -> tuple[list[RowBlock], dict]:
        """Execute the tree; returns (result blocks, stats).  Shard-clock
        charges are folded into the shared clock even when execution
        raises, like the other engines."""
        start = self._clock.now
        try:
            program = pl.compile_pipelines(operator)
            if program.has_limit:
                blocks = self._serial_tree(operator)
            else:
                placed = self._pipeline_placed(program.root)
                blocks = self._gather_blocks(
                    placed, self._pipe_op(program.root), "result gather")
            self._check_budget()
        finally:
            stats = self.finish(start)
        return blocks, stats

    def finish(self, start: float | None = None) -> dict:
        """Fold all shard-clock charges into the shared clock in canonical
        order and return the scheduler stats."""
        direct = (self._clock.now - start) if start is not None else 0.0
        task_total = sum(shard.now for shard in self._shard_clocks)
        charged = direct + task_total + self._lane.now
        # exchanges charged the shared clock serially; the makespan
        # replaces that serial sum with the NIC-placement makespan
        makespan = ((direct - self._network_seconds) + self._phase_makespan
                    + self._exchange_makespan + self._lane.now)
        # fold every shard clock (then the lane) into the shared clock in
        # canonical order, accumulating a fresh per-category total on the
        # side: unlike shared-clock deltas, which pick up rounding from
        # whatever the clock already accumulated, this dict is a pure
        # function of the charge sequence — bit-identical across node and
        # worker counts (the invariant tests and benchmarks assert on)
        by_category: dict[str, float] = {}
        limit = self._clock.limit
        self._clock.set_limit(None)
        try:
            for shard in self._shard_clocks:
                self._fold(shard, by_category)
            self._fold(self._lane, by_category)
        finally:
            self._clock.set_limit(limit)
        per_node = [
            {"node": node,
             "tasks": self._node_tasks[node],
             "io_seconds": self._node_io[node],
             "compute_seconds": self._node_compute[node],
             "busy_seconds": self._node_busy[node],
             **self._node_net[node]}
            for node in range(self.nodes)
        ]
        stats = {
            "nodes": self.nodes,
            "workers": self.workers,
            "morsel_rows": self.morsel_rows,
            "tasks": self.tasks_dispatched,
            "phases": self._phase_no,
            "virtual_charged": charged,
            "virtual_makespan": makespan,
            "modeled_speedup": (charged / makespan) if makespan > 0 else 1.0,
            "charged_by_category": by_category,
            "rows_shuffled": sum(e["rows"] for e in self.exchanges
                                 if e["kind"] == cat.SHUFFLE),
            "bytes_on_wire": sum(e["bytes"] for e in self.exchanges),
            "exchange_seconds": self._network_seconds,
            "exchanges": list(self.exchanges),
            "per_node": per_node,
        }
        registry = self._registry
        if registry is not None:
            registry.counter("exec.tasks").inc(self.tasks_dispatched)
            registry.counter("dist.exchanges").inc(len(self.exchanges))
            registry.histogram("exec.makespan").observe(makespan)
            for entry in per_node:
                node = entry["node"]
                registry.gauge("dist.node.makespan", node=node).set(
                    entry["busy_seconds"])
                registry.gauge("dist.node.rows_shuffled", node=node).set(
                    entry["rows_sent"])
                registry.gauge("dist.node.bytes_shuffled", node=node).set(
                    entry["bytes_sent"])
                registry.gauge("dist.node.queue_depth", node=node).set(
                    entry["nic_queued"])
        return stats

    # -- accounting --------------------------------------------------------

    def _shard_clock(self) -> SimClock:
        shard = self._clock.shard()
        self._shard_clocks.append(shard)
        return shard

    def _fold(self, shard: SimClock,
              by_category: dict[str, float]) -> None:
        for category, seconds in shard.breakdown().items():
            self._clock.absorb(seconds, category)  # repro: charge-category-ok folding shard breakdowns whose categories were validated at charge time
            by_category[category] = by_category.get(category, 0.0) + seconds

    def _check_budget(self) -> None:
        limit = self._clock.limit
        if limit is None:
            return
        pending = sum(shard.now for shard in self._shard_clocks) \
            + self._lane.now
        if self._clock.now + pending > limit:
            raise BudgetExceeded(
                f"virtual-time budget {limit} exceeded at a distributed "
                f"phase boundary")

    def _close_phase(self, tasks: list[tuple[int, float]],
                     io_by_node: dict[int, float] | None = None) -> None:
        """Close one parallel phase: per node, serial page I/O plus its
        morsel costs list-scheduled onto ``workers`` lanes; the phase's
        makespan contribution is the slowest node."""
        self._phase_no += 1
        by_node: dict[int, list[float]] = {}
        for node, cost in tasks:
            by_node.setdefault(node, []).append(cost)
        if io_by_node:
            for node in io_by_node:
                by_node.setdefault(node, [])
        longest = 0.0
        for node in sorted(by_node):
            costs = by_node[node]
            io = io_by_node.get(node, 0.0) if io_by_node else 0.0
            node_time = io
            if costs:
                lanes = LaneSchedule(min(self.workers, len(costs)) or 1)
                for cost in costs:
                    lanes.assign(0.0, cost)
                node_time += lanes.makespan()
            self._node_io[node] += io
            self._node_compute[node] += sum(costs)
            self._node_busy[node] += node_time
            longest = max(longest, node_time)
        self._phase_makespan += longest

    def _exchange(self, category: str, transfers: list,
                  op: ops.Operator | None, label: str) -> dict | None:
        """Run one exchange through the network model, charging the shared
        clock under ``op``'s span so EXPLAIN ANALYZE attribution (and its
        empty ``(other)`` bucket) keeps holding."""
        transfers = [t for t in transfers if t[0] != t[1]]
        if not transfers:
            return None
        tracer = self._tracer
        if tracer is not None and op is not None:
            tracer.push(tracer.operator_span(op))
        try:
            stats = self._network.exchange(category, transfers, self._clock)
        finally:
            if tracer is not None and op is not None:
                tracer.pop()
        self._exchange_makespan += stats["makespan"]
        self._network_seconds += sum(stats["seconds"].values())
        for entry in stats["per_node"]:
            net = self._node_net[entry["node"]]
            for key in net:
                net[key] += entry[key]
        record = {
            "kind": category,
            "label": label,
            "op": type(op).__name__ if op is not None else None,
            "node_id": getattr(getattr(op, "plan_node", None), "node_id",
                               None),
            "rows": stats["rows"],
            "bytes": int(stats["bytes"]),
            "messages": stats["messages"],
            "seconds": sum(stats["seconds"].values()),
            "makespan": stats["makespan"],
        }
        self.exchanges.append(record)
        if tracer is not None:
            tracer.event("exchange", kind=category, label=label,
                         rows=record["rows"], bytes=record["bytes"],
                         messages=record["messages"])
        return stats

    def _gather_blocks(self, placed: list[tuple[int, RowBlock]],
                       op: ops.Operator | None,
                       label: str) -> list[RowBlock]:
        """Funnel placed blocks to the coordinator; canonical order is
        already the serial engines' block order."""
        transfers = [(node, COORDINATOR, block_bytes(block), len(block))
                     for node, block in placed if node != COORDINATOR]
        self._exchange(cat.GATHER, transfers, op, label)
        return [block for _, block in placed]

    # -- fault injection ---------------------------------------------------

    def _maybe_slow_node(self, node: int, shard: SimClock,
                         index: int) -> None:
        faults = self.faults
        if faults is None:
            return
        site = f"{self._fault_scope}:{self._phase_no}:{index}:0"
        spec = faults.decide("slow_node", site, index=index,
                             target=f"node{node}")
        if spec is not None and spec.latency > 0:
            shard.advance(spec.latency, cat.FAULT_SLOW)

    # -- tracing helpers ---------------------------------------------------

    def _on_lane(self, op: ops.Operator, fn):
        tracer = self._tracer
        if tracer is None:
            return fn()
        tracer.push(tracer.operator_span(op))
        try:
            return fn()
        finally:
            tracer.pop()

    @staticmethod
    def _pipe_op(pipe: pl.Pipeline) -> ops.Operator | None:
        if pipe.stages:
            return pipe.stages[-1].op
        source = pipe.source
        if isinstance(source, pl.SinkSource):
            return source.sink.op
        return getattr(source, "op", None)

    # -- pipeline execution ------------------------------------------------

    def _pipeline_placed(self, pipe: pl.Pipeline
                         ) -> list[tuple[int, RowBlock]]:
        """Execute one pipeline; returns ``(node, block)`` placements in
        canonical (serial-engine) block order."""
        for dep in pipe.inputs:
            self._run_to_sink(dep)
        safe: list[pl.PipelineStage] = []
        tail: list[pl.PipelineStage] = []
        for stage in pipe.stages:
            (tail if tail or not stage.parallel_safe else safe).append(stage)
        source = pipe.source
        if isinstance(source, pl.ScanSource):
            self._broadcast_builds(source.op, safe)
            placed = self._scan_placed(source.op, safe)
        else:
            placed = self._source_placed(source)
            if safe:
                placed = self._stage_placed(placed, safe)
        if tail:
            blocks = self._gather_blocks(placed, tail[0].op, "serial tail")
            placed = [(COORDINATOR, block)
                      for block in self._serial_stages(blocks, tail)]
        return placed

    def _run_to_sink(self, pipe: pl.Pipeline) -> None:
        """Run a breaker pipeline; its merged result always lands on the
        coordinator (every merge runs on the coordinator's serial lane),
        so downstream SinkSources are node-0 placed."""
        placed = self._pipeline_placed(pipe)
        sink = pipe.sink
        if isinstance(sink, pl.AggregateSink):
            sink.result_blocks = self._aggregate_placed(sink.op, placed)
        elif isinstance(sink, pl.SortSink):
            sink.result_blocks = self._sort_placed(sink.op, placed)
        elif isinstance(sink, pl.BuildSink):
            self._build_placed(sink, placed)
        else:  # CollectSink and friends: gather, no merge charges
            sink.result_blocks = self._gather_blocks(
                placed, sink.op or self._pipe_op(pipe), "collect gather")

    def _source_placed(self, source: pl.PipelineSource
                       ) -> list[tuple[int, RowBlock]]:
        """Non-scan sources: breaker sinks replay their coordinator-placed
        result; serial operators (IndexScan, NestedLoopJoin, EmptyRow) run
        their batch path on the coordinator lane."""
        if isinstance(source, pl.SinkSource):
            return [(COORDINATOR, block)
                    for block in source.sink.result_blocks]
        source.op._clock = self._lane
        blocks = self._on_lane(
            source.op,
            lambda: [carrier.materialize()
                     for carrier in source.carriers(self._lane)])
        return [(COORDINATOR, block) for block in blocks]

    def _scan_placed(self, scan: ops.SeqScanOp,
                     stages: list[pl.PipelineStage]
                     ) -> list[tuple[int, RowBlock]]:
        """Shard-local scan fragments: shard ``i`` scans on node
        ``i % nodes``, charging page I/O to a per-shard page clock and each
        morsel's fused stage chain to a per-task clock."""
        table = scan._table
        tracer = self._tracer
        sharded = getattr(table, "sharded", False)
        n_shards = table.shard_count if sharded else 1
        page_clocks = [self._shard_clock() for _ in range(n_shards)]
        if tracer is None:
            if sharded:
                per_shard = table.shard_morsels(self.morsel_rows,
                                                clock_for=page_clocks)
            else:
                per_shard = [table.scan_morsels(self.morsel_rows,
                                                clock=page_clocks[0])]
        else:
            with tracer.op(scan):
                if sharded:
                    per_shard = table.shard_morsels(self.morsel_rows,
                                                    clock_for=page_clocks)
                else:
                    per_shard = [table.scan_morsels(self.morsel_rows,
                                                    clock=page_clocks[0])]
            stage_spans = [tracer.operator_span(stage.op)
                           for stage in stages]
            scan_span = tracer.operator_span(scan)

        def task(morsel, shard: SimClock):
            columns, n = morsel
            lens = [0] * (1 + len(stages))
            out = scan.scan_block(scan.make_block(columns, n), shard)
            if out is None:
                return lens, None
            carrier = pl.BlockCarrier(*out)
            lens[0] = carrier.count
            for j, stage in enumerate(stages):
                carrier = stage.apply(carrier, shard)
                if carrier is None:
                    return lens, None
                lens[j + 1] = carrier.count
            return lens, carrier.materialize()

        def traced_task(morsel, shard: SimClock):
            columns, n = morsel
            lens = [0] * (1 + len(stages))
            tracer.push(scan_span)
            try:
                out = scan.scan_block(scan.make_block(columns, n), shard)
            finally:
                tracer.pop()
            if out is None:
                return lens, None
            carrier = pl.BlockCarrier(*out)
            lens[0] = carrier.count
            for j, stage in enumerate(stages):
                tracer.push(stage_spans[j])
                try:
                    carrier = stage.apply(carrier, shard)
                finally:
                    tracer.pop()
                if carrier is None:
                    return lens, None
                lens[j + 1] = carrier.count
            return lens, carrier.materialize()

        run = task if tracer is None else traced_task
        chain = [scan] + [stage.op for stage in stages]
        placed: list[tuple[int, RowBlock]] = []
        phase_tasks: list[tuple[int, float]] = []
        io_by_node: dict[int, float] = {}
        index = 0
        for shard_idx in range(n_shards):
            node = shard_idx % self.nodes
            io_by_node[node] = io_by_node.get(node, 0.0) \
                + page_clocks[shard_idx].now
            for morsel in per_shard[shard_idx]:
                tclock = self._shard_clock()
                lens, block = run(morsel, tclock)
                self._maybe_slow_node(node, tclock, index)
                for op, n_out in zip(chain, lens):
                    op.rows_out += n_out
                if block is not None:
                    placed.append((node, block))
                phase_tasks.append((node, tclock.now))
                self._node_tasks[node] += 1
                index += 1
        self.tasks_dispatched += index
        self._close_phase(phase_tasks, io_by_node)
        self._check_budget()
        return placed

    def _stage_placed(self, placed: list[tuple[int, RowBlock]],
                      stages: list[pl.PipelineStage]
                      ) -> list[tuple[int, RowBlock]]:
        """Fused stage chain over already-placed blocks (breaker output or
        a serial operator's blocks), each block a task on its node."""
        tracer = self._tracer
        if tracer is not None:
            stage_spans = [tracer.operator_span(stage.op)
                           for stage in stages]
        chain = [stage.op for stage in stages]
        out: list[tuple[int, RowBlock]] = []
        phase_tasks: list[tuple[int, float]] = []
        for index, (node, block) in enumerate(placed):
            tclock = self._shard_clock()
            lens = [0] * len(stages)
            carrier: pl.BlockCarrier | None = pl.BlockCarrier(block)
            for j, stage in enumerate(stages):
                if tracer is None:
                    carrier = stage.apply(carrier, tclock)
                else:
                    tracer.push(stage_spans[j])
                    try:
                        carrier = stage.apply(carrier, tclock)
                    finally:
                        tracer.pop()
                if carrier is None:
                    break
                lens[j] = carrier.count
            self._maybe_slow_node(node, tclock, index)
            for op, n_out in zip(chain, lens):
                op.rows_out += n_out
            if carrier is not None:
                out.append((node, carrier.materialize()))
            phase_tasks.append((node, tclock.now))
            self._node_tasks[node] += 1
        self.tasks_dispatched += len(placed)
        self._close_phase(phase_tasks)
        self._check_budget()
        return out

    def _serial_stages(self, blocks: list[RowBlock],
                       stages: list[pl.PipelineStage]) -> list[RowBlock]:
        """Order-sensitive stage tail (Distinct) on the coordinator lane,
        in canonical order."""
        lane = self._lane
        tracer = self._tracer
        out: list[RowBlock] = []
        for block in blocks:
            carrier: pl.BlockCarrier | None = pl.BlockCarrier(block)
            for stage in stages:
                if tracer is None:
                    carrier = stage.apply(carrier, lane)
                else:
                    tracer.push(tracer.operator_span(stage.op))
                    try:
                        carrier = stage.apply(carrier, lane)
                    finally:
                        tracer.pop()
                if carrier is None:
                    break
                stage.op.rows_out += carrier.count
            if carrier is not None:
                out.append(carrier.materialize())
        return out

    # -- breaker sinks -----------------------------------------------------

    def _node_task_phase(self, op: ops.Operator,
                         placed: list[tuple[int, Any]], fn
                         ) -> list[tuple[int, Any]]:
        """One task per placed item on its node under ``op``'s span;
        returns ``(node, result)`` in canonical order and closes the
        phase."""
        tracer = self._tracer
        span = tracer.operator_span(op) if tracer is not None else None
        out: list[tuple[int, Any]] = []
        phase_tasks: list[tuple[int, float]] = []
        for index, (node, item) in enumerate(placed):
            tclock = self._shard_clock()
            if tracer is None:
                result = fn(item, tclock)
            else:
                tracer.push(span)
                try:
                    result = fn(item, tclock)
                finally:
                    tracer.pop()
            self._maybe_slow_node(node, tclock, index)
            out.append((node, result))
            phase_tasks.append((node, tclock.now))
            self._node_tasks[node] += 1
        self.tasks_dispatched += len(placed)
        self._close_phase(phase_tasks)
        self._check_budget()
        return out

    def _aggregate_placed(self, op: ops.AggregateOp,
                          placed: list[tuple[int, RowBlock]]
                          ) -> list[RowBlock]:
        """Node-local partial aggregation, then either a shuffled
        partitioned merge (wide GROUP BY across nodes) or a plain gather
        of the partials to the coordinator.  Both merges replay raw
        values in global morsel order, so results — and charges, since
        the merge itself charges nothing — are bit-identical to the
        serial engines at every node count."""
        partials = self._node_task_phase(op, placed, op.partial_block)
        if (self.nodes > 1 and op._node.group_by and partials
                and max(len(p) for _, p in partials)
                > op.PARTITION_MIN_KEYS):
            result = self._shuffle_merge(op, partials)
        else:
            transfers = [(node, COORDINATOR, payload_bytes(partial),
                          len(partial))
                         for node, partial in partials
                         if node != COORDINATOR and partial]
            self._exchange(cat.GATHER, transfers, op, "aggregate partials")
            result = self._on_lane(op, lambda: op.finish_partials(
                [partial for _, partial in partials]))
        return [result] if result is not None else []

    def _shuffle_merge(self, op: ops.AggregateOp,
                       partials: list[tuple[int, dict]]) -> RowBlock | None:
        """Hash-repartition per-morsel partials across the nodes: node
        ``q`` owns partition ``q``, producers ship every slice whose owner
        is a different node, each owner folds its partition's slices in
        global morsel order, and the merged partitions gather to the
        coordinator for first-seen-order reassembly."""
        parts = self.nodes

        def hasher(key):
            return stable_hash(key, parts)

        splits = [op.split_partial(partial, parts, hasher=hasher)
                  for _, partial in partials]
        transfers = []
        for (node, _), split in zip(partials, splits):
            for owner in range(parts):
                slice_ = split[owner]
                if slice_ and node != owner:
                    transfers.append((node, owner, payload_bytes(slice_),
                                      len(slice_)))
        self._exchange(cat.SHUFFLE, transfers, op, "partial repartition")
        merged = [op.merge_partition([split[owner] for split in splits])
                  for owner in range(parts)]
        gather = [(owner, COORDINATOR, payload_bytes(part), len(part))
                  for owner, part in enumerate(merged)
                  if owner != COORDINATOR and part]
        self._exchange(cat.GATHER, gather, op, "merged partitions")
        return self._on_lane(op, lambda: op.finish_partitions(merged))

    def _sort_placed(self, op: ops.SortOp,
                     placed: list[tuple[int, RowBlock]]) -> list[RowBlock]:
        """Node-local sorted runs, gathered to the coordinator for the
        k-way merge on the serial lane (same split as the parallel
        engine, so charged totals match the serial full sort)."""
        runs = self._node_task_phase(op, placed, op.sort_block)
        transfers = [(node, COORDINATOR, payload_bytes(run), len(run))
                     for node, run in runs
                     if node != COORDINATOR and run]
        self._exchange(cat.GATHER, transfers, op, "sorted runs")
        out = self._on_lane(op, lambda: op.merge_runs(
            [run for _, run in runs], self._lane))
        for block in out:
            op.rows_out += len(block)
        return out

    def _build_placed(self, sink: pl.BuildSink,
                      placed: list[tuple[int, RowBlock]]) -> None:
        """Node-local hash-join build parts, gathered to the coordinator
        and merged in morsel order; the payload size is remembered for
        the probe side's broadcast."""
        op = sink.op
        parts = self._node_task_phase(op, placed, op.build_block)
        transfers = [(node, COORDINATOR, payload_bytes(part), part[0])
                     for node, part in parts
                     if node != COORDINATOR and part[0]]
        self._exchange(cat.GATHER, transfers, op, "build parts")
        buckets, factor = self._on_lane(op, lambda: op.merge_build(
            [part for _, part in parts], self._lane))
        sink.set_built(buckets, factor)
        build_rows = sum(part[0] for _, part in parts)
        self._build_payloads[id(sink)] = (build_rows, payload_bytes(buckets))

    def _broadcast_builds(self, scan: ops.SeqScanOp,
                          stages: list[pl.PipelineStage]) -> None:
        """Ship each probe stage's built table from the coordinator to
        every node that runs this scan's shard fragments."""
        if self.nodes <= 1:
            return
        table = scan._table
        if not getattr(table, "sharded", False):
            return
        targets = sorted({shard % self.nodes
                          for shard in range(table.shard_count)}
                         - {COORDINATOR})
        if not targets:
            return
        for stage in stages:
            if not isinstance(stage, pl.ProbeStage):
                continue
            rows, nbytes = self._build_payloads.get(
                id(stage.build), (0, payload_bytes(stage.build.buckets)))
            transfers = [(COORDINATOR, node, nbytes, rows)
                         for node in targets]
            self._exchange(cat.BROADCAST, transfers, stage.op,
                           "build broadcast")

    # -- whole-tree serial fallback ----------------------------------------

    def _serial_tree(self, op: ops.Operator) -> list[RowBlock]:
        """LIMIT plans run entirely on the coordinator lane — streaming
        early-termination semantics, and therefore charges, stay exactly
        the batch engine's."""
        self._rebind(op, self._lane)
        return list(op.batches())

    @classmethod
    def _rebind(cls, op: ops.Operator, lane: SimClock) -> None:
        op._clock = lane
        for attr in _CHILD_ATTRS:
            child = getattr(op, attr, None)
            if isinstance(child, ops.Operator):
                cls._rebind(child, lane)
