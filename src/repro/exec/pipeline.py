"""Fused pipeline execution: plans compiled into pipelines of streaming
stages, split at pipeline breakers.

The batch engine's per-operator pull (`operator.batches()` chains) pays a
block materialization at every stage boundary: Filter copies every column
through ``RowBlock.select``, Project builds another block on top, and the
generator nesting re-dispatches per stage per block.  This module makes
the pipeline — not the operator — the unit of execution, for all three
engines:

* :func:`compile_pipelines` walks an operator tree (consulting the
  ``STREAMING``/``BREAKER`` annotations on the plan nodes the operators
  were built from, see ``repro/plan/logical.py``) and produces a
  :class:`PipelineProgram`: a DAG of :class:`Pipeline` objects split at
  breakers (aggregate, sort, hash-join build, nested-loop join), each a
  *source* (scan, breaker output, or serial operator) plus a chain of
  fused :class:`PipelineStage` steps (filter, project, hash-join probe,
  distinct, limit) ending in a :class:`PipelineSink` (or the program
  output).
* Within a pipeline, one :class:`BlockCarrier` flows per source block
  through every stage with **zero intermediate materialization**: a
  filter (or a scan's pushed-down predicate) evaluates its mask against
  the scan block's columns directly and *defers* the selection on the
  carrier; a downstream projection applies the mask only to the columns
  it actually projects.  No ``RowBlock.from_*`` / ``select`` copy happens
  per stage — at most one materialization per pass, and none at all for
  mask+slot-projection chains.
* :func:`run_program` is the serial drive loop (the batch engine's
  default); ``repro/exec/parallel.py`` drives the same compiled pipelines
  morsel-wise (one task pushes one morsel through the pipeline's whole
  stage chain on a worker), and the AI loader's PREDICT materialization
  feeds from :func:`table_blocks`, the same scan-block primitive the
  pipeline sources use.

Charge parity
-------------
Every stage charges the clock it is handed exactly what the unfused
operator charged for the same rows, in the same order (see
``SimClock.advance_charges``): scan ``TUPLE_CPU`` + pushed-predicate
``EVAL_PREDICATE`` per scanned row, filter ``EVAL_PREDICATE`` per input
row, project ``TUPLE_CPU`` per *surviving* row, probe per the hash-join
hooks.  Deferring a selection never changes a charge because charges are
keyed to row counts, not to copies.  The three-way parity suite
(`tests/test_batch_parity.py`, `tests/test_pipeline.py`) holds fused,
unfused, row, and parallel execution to identical rows and charged
totals.

LIMIT early exit
----------------
A satisfied :class:`LimitStage` reports ``done`` and the drive loop stops
pulling the source pipeline — the fused engine's equivalent of the
generator laziness the unfused chains relied on, and the contract that
lets a LIMIT above a join probe stop the probe-side scan mid-table.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from repro.common.simtime import SimClock
from repro.exec import operators as ops
from repro.exec.batch import RowBlock, rows_to_blocks
from repro.exec.expr import RowLayout


def table_blocks(table, layout: RowLayout, kinds, batch_size: int,
                 start_page: int = 0) -> Iterator[RowBlock]:
    """Stream a heap table as :class:`RowBlock`\\ s — the shared scan
    primitive under pipeline sources and the AI loader's PREDICT
    materialization.  Charges nothing; buffer-pool accounting happens
    inside the storage scan, per page, exactly as ``scan()`` would.
    ``start_page`` skips earlier pages entirely (tail scans)."""
    for columns, n in table.scan_column_batches(batch_size, start_page):
        yield RowBlock(layout, columns, n, kinds)


class BlockSource(ops.Operator):
    """Replays blocks as an operator child — a pre-computed list, or a
    lazy generator that produces them on demand (single use).

    Used to feed a serially-executed operator (NestedLoopJoin, ...) with
    the output of another pipeline.  Charges nothing and counts nothing
    itself: the blocks' producers charge their cost and attribute their
    row counts as the blocks are produced.
    """

    def __init__(self, layout: RowLayout, blocks, clock: SimClock):
        super().__init__(layout, clock)
        self._blocks = blocks

    def __iter__(self):
        for block in self._blocks:
            yield from block.iter_rows()

    def batches(self):
        yield from self._blocks


class BlockCarrier:
    """One block flowing through a pipeline, its selection possibly
    deferred: ``mask`` (when set) marks the surviving rows of ``block``
    without the copy having happened yet.  Stages that can work straight
    off the mask (projection of column slots) never pay for it;
    :meth:`materialize` applies it at most once per pass."""

    __slots__ = ("block", "mask", "_count")

    def __init__(self, block: RowBlock, mask: np.ndarray | None = None):
        self.block = block
        self.mask = mask
        self._count: int | None = None

    @property
    def count(self) -> int:
        """Surviving row count (without materializing)."""
        if self._count is None:
            self._count = (len(self.block) if self.mask is None
                           else int(np.count_nonzero(self.mask)))
        return self._count

    def materialize(self) -> RowBlock:
        """Apply any deferred mask (once) and return the concrete block."""
        if self.mask is not None:
            self.block = self.block.select(self.mask)
            self.mask = None
            self._count = len(self.block)
        return self.block


# -- stages -------------------------------------------------------------------


class PipelineStage:
    """One fused streaming step: carrier in, carrier (or None) out.

    ``parallel_safe`` stages are stateless after construction and may run
    concurrently on morsel workers (the parallel-hook contract in
    ``repro/exec/operators.py``); unsafe ones carry order-sensitive state
    (Distinct's seen set, Limit's counters) and run serially.  Stages
    never touch ``rows_out`` — the driver attributes counts.
    """

    parallel_safe = True

    def __init__(self, op: ops.Operator):
        self.op = op

    def apply(self, carrier: BlockCarrier,
              clock: SimClock) -> BlockCarrier | None:
        raise NotImplementedError


class FilterStage(PipelineStage):
    """Evaluates the predicate mask against the (materialized) input
    block and defers the selection on the carrier."""

    def apply(self, carrier, clock):
        block = carrier.materialize()
        mask = self.op.filter_mask(block, clock)
        if mask is None:
            return None
        return BlockCarrier(block, mask)


class ProjectStage(PipelineStage):
    """Projects straight off the carrier: a deferred mask is applied only
    to the columns the projection actually outputs."""

    def apply(self, carrier, clock):
        out = self.op.project_block(carrier.block, carrier.mask,
                                    carrier.count, clock)
        return BlockCarrier(out)


class ProbeStage(PipelineStage):
    """Hash-join probe against a :class:`BuildSink`'s finished bucket
    table (read-only by the time any probe runs)."""

    def __init__(self, op: ops.HashJoinOp, build: "BuildSink"):
        super().__init__(op)
        self.build = build

    def apply(self, carrier, clock):
        out = self.op.probe_block(carrier.materialize(), self.build.buckets,
                                  self.build.probe_factor, clock)
        return BlockCarrier(out) if out is not None else None


class DistinctStage(PipelineStage):
    """Streaming DISTINCT: order-sensitive shared state, serial only."""

    parallel_safe = False

    def __init__(self, op: ops.DistinctOp):
        super().__init__(op)
        self._seen: set = set()

    def apply(self, carrier, clock):
        out = self.op.distinct_block(carrier.materialize(), self._seen,
                                     clock)
        return BlockCarrier(out) if out is not None else None


class LimitStage(PipelineStage):
    """OFFSET/LIMIT as the pipeline-terminating early-exit stage: once
    ``done`` is set the driver stops pulling the source pipeline instead
    of scanning the rest of the table."""

    parallel_safe = False

    def __init__(self, op: ops.LimitOp):
        super().__init__(op)
        self._state = op.limit_state()
        self.done = False

    def apply(self, carrier, clock):
        out, self.done = self.op.limit_block(carrier.materialize(),
                                             self._state)
        return BlockCarrier(out) if out is not None else None


# -- sinks --------------------------------------------------------------------


class PipelineSink:
    """A breaker endpoint: absorbs the pipeline's materialized blocks and
    produces ``result_blocks`` for the next pipeline once finished."""

    def __init__(self, op: ops.Operator | None):
        self.op = op
        self.result_blocks: list[RowBlock] = []

    def absorb(self, block: RowBlock, clock: SimClock) -> None:
        raise NotImplementedError

    def absorb_carrier(self, carrier: BlockCarrier, clock: SimClock) -> None:
        """Absorb one carrier.  The default materializes (applying any
        deferred mask) and delegates to :meth:`absorb`; sinks that can
        consume ``(block, mask)`` directly override this so the selection
        copy never happens (the aggregate sink — the tentpole win of the
        deferred-mask-across-breakers design)."""
        self.absorb(carrier.materialize(), clock)

    def finish(self, clock: SimClock) -> None:
        """Called once, after the last absorb (or immediately for an
        empty input)."""


class CollectSink(PipelineSink):
    """Plain collection — feeds serial operators' replay children."""

    def absorb(self, block, clock):
        self.result_blocks.append(block)


class AggregateSink(PipelineSink):
    def __init__(self, op: ops.AggregateOp):
        super().__init__(op)
        self._state = op.new_state()

    def absorb(self, block, clock):
        self.op.absorb_block(block, self._state, clock)

    def absorb_carrier(self, carrier, clock):
        """Consume the carrier's deferred selection directly: group and
        value extraction AND the mask into their own partition masks, so
        a filtered scan feeding an aggregate never materializes a
        selected block at all."""
        self.op.absorb_carrier(carrier.block, carrier.mask, carrier.count,
                               self._state, clock)

    def finish(self, clock):
        out = self.op.finish_state(self._state)
        if out is not None:
            self.result_blocks.append(out)


class SortSink(PipelineSink):
    def __init__(self, op: ops.SortOp):
        super().__init__(op)
        self._rows: list[tuple] = []

    def absorb(self, block, clock):
        self._rows.extend(block.iter_rows())

    def finish(self, clock):
        rows = self.op.sorted_rows(self._rows, clock)
        for block in rows_to_blocks(self.op.layout, rows):
            self.result_blocks.append(self.op._emit_block(block))


class BuildSink(PipelineSink):
    """Hash-join build side: buckets in input order, spill surcharge at
    finish.  The parallel scheduler fills it through the build/merge
    parallel hooks instead (:meth:`set_built`); either way the probe
    stage reads the same ``buckets``/``probe_factor``."""

    def __init__(self, op: ops.HashJoinOp):
        super().__init__(op)
        self.buckets: dict = {}
        self.probe_factor = 1.0
        self._build_rows = 0

    def absorb(self, block, clock):
        n, pairs = self.op.build_block(block, clock)
        self._build_rows += n
        for key, row in pairs:
            self.buckets.setdefault(key, []).append(row)

    def finish(self, clock):
        self.probe_factor = self.op._spill(self._build_rows, clock)

    def set_built(self, buckets: dict, probe_factor: float) -> None:
        self.buckets = buckets
        self.probe_factor = probe_factor


# -- sources ------------------------------------------------------------------


class PipelineSource:
    """Where a pipeline's carriers come from.  ``attributes_rows`` is True
    when the source's own machinery already counts ``rows_out`` (operators
    driven through ``batches()``); otherwise the driver attributes the
    per-carrier counts to ``op``."""

    attributes_rows = False
    op: ops.Operator

    def carriers(self, clock: SimClock) -> Iterator[BlockCarrier]:
        raise NotImplementedError


# The fused drive loop touches each block a fixed number of times however
# large it is, so it runs scans at coarse granularity (16 default batches)
# to amortize per-block dispatch — one of the fusion wins the unfused
# per-operator pull cannot take without growing every operator's blocks.
# Scan blocks are array views sliced out of the table's merged typed
# columns, never value copies, so coarse blocks cost no extra memory.
# Plans that can stop early (any LIMIT anywhere, marked at compile time)
# keep the operator's own ``max_batch_rows`` instead: early exit stops on
# block boundaries, so a bigger block would scan — and charge — rows the
# unfused engines never touch.  Full-scan plans are granularity-neutral
# on charges (every row is scanned and charged per row either way).
FUSED_SCAN_ROWS = 16384


class ScanSource(PipelineSource):
    """SeqScan: streams table blocks through the scan's fused hook — the
    pushed-down predicate becomes a deferred mask on the carrier."""

    def __init__(self, op: ops.SeqScanOp):
        self.op = op
        # set by compile_pipelines when the program contains a LIMIT:
        # early exit must match the unfused engine's block boundaries
        self.early_exit = False

    def scan_rows(self) -> int:
        if self.early_exit:
            return self.op.max_batch_rows
        return max(self.op.max_batch_rows, FUSED_SCAN_ROWS)

    def carriers(self, clock):
        scan = self.op
        for block in table_blocks(scan._table, scan.layout, scan._kinds,
                                  self.scan_rows()):
            out = scan.scan_block(block, clock)
            if out is not None:
                yield BlockCarrier(*out)


class OperatorSource(PipelineSource):
    """Wraps an operator's own serial ``batches()`` (IndexScan, EmptyRow):
    it charges its own clock and attributes its own counts."""

    attributes_rows = True

    def __init__(self, op: ops.Operator):
        self.op = op

    def carriers(self, clock):
        for block in self.op.batches():
            yield BlockCarrier(block)


class SerialOpSource(PipelineSource):
    """Operators without a fused decomposition (NestedLoopJoin, unknown
    breakers): their child subtrees compile to their own pipelines; this
    source swaps the children for block replays and drives the
    operator's unchanged serial path.

    Two replay modes.  :meth:`carriers` (the parallel scheduler) expects
    the child pipelines already run into their :class:`CollectSink`\\ s.
    :meth:`lazy_carriers` (the serial fused driver) hands the operator
    *generators* that drive the child pipelines on demand — the
    operator's own pull order decides what actually runs, so a LIMIT
    above a NestedLoopJoin stops the lazily-pulled side mid-scan and
    charges exactly what the unfused engine charges."""

    attributes_rows = True

    def __init__(self, op: ops.Operator,
                 children: list[tuple[str, "Pipeline"]]):
        self.op = op
        self.children = children

    def _replay(self, blocks_for) -> Iterator[BlockCarrier]:
        for attr, child_pipeline in self.children:
            child = getattr(self.op, attr)
            setattr(self.op, attr,
                    BlockSource(child.layout, blocks_for(child_pipeline),
                                self.op._clock))
        for block in self.op.batches():
            yield BlockCarrier(block)

    def carriers(self, clock):
        return self._replay(lambda cp: cp.sink.result_blocks)

    def lazy_carriers(self, clock):
        return self._replay(lambda cp: _drive(cp, clock))


class SinkSource(PipelineSource):
    """Replays a finished breaker sink's result blocks (already charged
    and attributed by the sink)."""

    attributes_rows = True

    def __init__(self, sink: PipelineSink):
        self.sink = sink
        self.op = sink.op

    def carriers(self, clock):
        for block in self.sink.result_blocks:
            yield BlockCarrier(block)


# -- pipelines ----------------------------------------------------------------


class Pipeline:
    """One streaming chain: source -> fused stages -> sink (or output).

    ``inputs`` are the pipelines that must run to their sinks before this
    one starts (hash-join builds, breaker inputs, serial-op children).
    """

    def __init__(self, source: PipelineSource):
        self.source = source
        self.stages: list[PipelineStage] = []
        self.sink: PipelineSink | None = None
        self.inputs: list[Pipeline] = []

    @property
    def stopped(self) -> bool:
        """True once an early-exit stage (LIMIT) is satisfied."""
        return any(getattr(stage, "done", False) for stage in self.stages)

    def describe(self) -> str:
        parts = [type(self.source).__name__.replace("Source", "")]
        parts += [type(s).__name__.replace("Stage", "") for s in self.stages]
        if self.sink is not None:
            parts.append(type(self.sink).__name__.replace("Sink", "") + "!")
        return "→".join(parts)


class PipelineProgram:
    """A compiled plan: pipelines in dependency order, the last one
    producing the query result."""

    def __init__(self, root: Pipeline, pipelines: list[Pipeline]):
        self.root = root
        self.pipelines = pipelines

    @property
    def has_limit(self) -> bool:
        return any(isinstance(stage, LimitStage)
                   for p in self.pipelines for stage in p.stages)

    def describe(self) -> list[str]:
        return [p.describe() for p in self.pipelines]


def compile_pipelines(op: ops.Operator) -> PipelineProgram:
    """Compile an operator tree into a pipeline DAG, splitting at the
    plan-level ``BREAKER`` annotations and fusing ``STREAMING`` nodes into
    their child's pipeline.  Pure inspection: operators are not mutated
    until the program runs."""
    pipelines: list[Pipeline] = []
    root = _compile(op, pipelines)
    pipelines.append(root)
    program = PipelineProgram(root, pipelines)
    if program.has_limit:
        # LIMIT can stop any pipeline mid-stream; scans must keep the
        # unfused engines' block boundaries so early exit charges the
        # same virtual time they would (see ScanSource.scan_rows)
        for pipeline in pipelines:
            if isinstance(pipeline.source, ScanSource):
                pipeline.source.early_exit = True
    return program


def _close(pipeline: Pipeline, sink: PipelineSink,
           pipelines: list[Pipeline]) -> Pipeline:
    pipeline.sink = sink
    pipelines.append(pipeline)
    return pipeline


# how each STREAMING plan node's operator fuses into its child pipeline
_STREAMING_STAGES: dict[type, type] = {
    ops.FilterOp: FilterStage,
    ops.ProjectOp: ProjectStage,
}


def _break_at_sink(op: ops.Operator, sink_cls,
                   pipelines: list[Pipeline]) -> Pipeline:
    """Full breaker: the child subtree becomes its own pipeline feeding a
    sink; the breaker's output starts the next pipeline."""
    feeder = _close(_compile(op._child, pipelines), sink_cls(op), pipelines)
    out = Pipeline(SinkSource(feeder.sink))
    out.inputs.append(feeder)
    return out


def _break_hash_join(op: ops.HashJoinOp,
                     pipelines: list[Pipeline]) -> Pipeline:
    """HashJoin: the build (left) side is the breaker; the probe fuses
    into the right child's pipeline as a streaming stage."""
    build = _close(_compile(op._left, pipelines), BuildSink(op), pipelines)
    probe = _compile(op._right, pipelines)
    probe.inputs.append(build)
    probe.stages.append(ProbeStage(op, build.sink))
    return probe


def _break_as_stage(stage_cls):
    """Order-sensitive breakers (Distinct's seen set, Limit's early-exit
    counter) ride the pipeline as serial stages: they end fusion for the
    parallel engine but stream in place serially."""
    def handler(op: ops.Operator, pipelines: list[Pipeline]) -> Pipeline:
        p = _compile(op._child, pipelines)
        p.stages.append(stage_cls(op))
        return p
    return handler


# how each BREAKER plan node's operator splits the pipeline; an
# unregistered breaker gets the conservative serial fallback below
_BREAKER_HANDLERS = {
    ops.AggregateOp: lambda op, ps: _break_at_sink(op, AggregateSink, ps),
    ops.SortOp: lambda op, ps: _break_at_sink(op, SortSink, ps),
    ops.HashJoinOp: _break_hash_join,
    ops.DistinctOp: _break_as_stage(DistinctStage),
    ops.LimitOp: _break_as_stage(LimitStage),
}


def _compile(op: ops.Operator, pipelines: list[Pipeline]) -> Pipeline:
    """One subtree -> one pipeline, dispatching on the plan-level
    STREAMING/BREAKER annotations (``repro/plan/logical.py``); sources
    and anything unannotated — or annotated but with no registered
    handler — fall through to the conservative serial paths."""
    node = op.plan_node
    if node is not None:
        if type(node).STREAMING:
            stage_cls = _STREAMING_STAGES.get(type(op))
            if stage_cls is not None:
                p = _compile(op._child, pipelines)
                p.stages.append(stage_cls(op))
                return p
        elif type(node).BREAKER:
            handler = _BREAKER_HANDLERS.get(type(op))
            if handler is not None:
                return handler(op, pipelines)

    # sources: scans (fused hook) and self-contained leaves
    if isinstance(op, ops.SeqScanOp):
        return Pipeline(ScanSource(op))
    if not any(isinstance(getattr(op, attr, None), ops.Operator)
               for attr in ("_child", "_left", "_right")):
        # leaf without a fused decomposition (IndexScan, EmptyRow): its
        # own serial batches() path is the source
        return Pipeline(OperatorSource(op))

    # conservative serial fallback (NestedLoopJoin, unregistered breaker
    # or streaming nodes): children become their own pipelines; the
    # operator replays their blocks through its unchanged serial path
    children: list[tuple[str, Pipeline]] = []
    inputs: list[Pipeline] = []
    for attr in ("_child", "_left", "_right"):
        child = getattr(op, attr, None)
        if isinstance(child, ops.Operator):
            cp = _close(_compile(child, pipelines), CollectSink(child),
                        pipelines)
            inputs.append(cp)
            children.append((attr, cp))
    p = Pipeline(SerialOpSource(op, children))
    p.inputs = inputs
    return p


# -- serial drive loop --------------------------------------------------------


def run_program(program: PipelineProgram,
                clock: SimClock) -> Iterator[RowBlock]:
    """Serially drive a compiled program, yielding the root pipeline's
    output blocks lazily (so budget enforcement and row-at-a-time
    consumers see charges as they accrue, like the unfused engines)."""
    yield from _drive(program.root, clock)


def _drive(pipeline: Pipeline, clock: SimClock) -> Iterator[RowBlock]:
    """Program-output drive: every surviving carrier materialized."""
    for carrier in _drive_carriers(pipeline, clock):
        yield carrier.materialize()


def _drive_carriers(pipeline: Pipeline,
                    clock: SimClock) -> Iterator[BlockCarrier]:
    """One fused pass per source block: the carrier runs the whole stage
    chain with its selection deferred wherever stages allow, and the
    driver (single-threaded) attributes per-operator ``rows_out``.
    Carriers are yielded with any remaining mask still deferred — sinks
    that understand masks consume them as-is."""
    source = pipeline.source
    if isinstance(source, SerialOpSource):
        # the operator's child pipelines are driven lazily through its
        # own pull order (so early exit can abandon them); only other
        # inputs (e.g. a hash-join build upstream) run eagerly
        lazy = {child_pipeline for _, child_pipeline in source.children}
        for dep in pipeline.inputs:
            if dep not in lazy:
                _run_to_sink(dep, clock)
        carriers = source.lazy_carriers(clock)
    else:
        for dep in pipeline.inputs:
            _run_to_sink(dep, clock)
        carriers = source.carriers(clock)
    attribute_source = not source.attributes_rows
    tracer = clock.tracer
    if tracer is not None:
        yield from _drive_carriers_traced(pipeline, clock, tracer,
                                          carriers, attribute_source)
        return
    for carrier in carriers:
        if attribute_source:
            source.op.rows_out += carrier.count
        out: BlockCarrier | None = carrier
        for stage in pipeline.stages:
            out = stage.apply(out, clock)
            if out is None:
                break
            stage.op.rows_out += out.count
        if out is not None:
            yield out
        if pipeline.stopped:
            break


def _drive_carriers_traced(pipeline: Pipeline, clock: SimClock, tracer,
                           carriers: Iterator[BlockCarrier],
                           attribute_source: bool
                           ) -> Iterator[BlockCarrier]:
    """The same drive loop with per-operator span attribution: the source
    pull runs under the source operator's span (so a fused scan's charges
    — including its deferred-mask predicate and the buffer pool's page
    charges — land on the scan) and each stage application runs under its
    operator's span.  Charges and row accounting are untouched."""
    source = pipeline.source
    if attribute_source:
        carriers = tracer.trace_iter(source.op, carriers)
    stage_spans = [tracer.operator_span(stage.op)
                   for stage in pipeline.stages]
    for carrier in carriers:
        if attribute_source:
            source.op.rows_out += carrier.count
        out: BlockCarrier | None = carrier
        for stage, span in zip(pipeline.stages, stage_spans):
            tracer.push(span)
            try:
                out = stage.apply(out, clock)
            finally:
                tracer.pop()
            if out is None:
                break
            stage.op.rows_out += out.count
        if out is not None:
            yield out
        if pipeline.stopped:
            break


def _run_to_sink(pipeline: Pipeline, clock: SimClock) -> None:
    sink = pipeline.sink
    tracer = clock.tracer
    if tracer is None:
        for carrier in _drive_carriers(pipeline, clock):
            sink.absorb_carrier(carrier, clock)
        sink.finish(clock)
        return
    span = tracer.operator_span(sink.op)
    for carrier in _drive_carriers(pipeline, clock):
        tracer.push(span)
        try:
            sink.absorb_carrier(carrier, clock)
        finally:
            tracer.pop()
    tracer.push(span)
    try:
        sink.finish(clock)
    finally:
        tracer.pop()
