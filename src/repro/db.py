"""The NeurDB facade: one object that accepts SQL (including PREDICT) and
runs it end-to-end through the parser, planner, executor, and AI engine.

This is the repo's primary public API::

    import repro
    db = repro.connect()
    db.execute("CREATE TABLE review (rid INT UNIQUE, brand_name TEXT, "
               "f1 FLOAT, f2 FLOAT, score FLOAT)")
    db.execute("INSERT INTO review VALUES (1, 'acme', 0.3, 1.2, 4.5)")
    result = db.execute(
        "PREDICT VALUE OF score FROM review WHERE brand_name = 'acme' "
        "TRAIN ON * WITH brand_name <> 'acme'")

PREDICT execution follows the paper's Fig. 1 running example: parse ->
customized plan -> scan feeds the streaming loader -> AI engine trains or
reuses a managed model -> inference operator produces the result.  The
monitor watches per-model loss; on drift it triggers the fine-tune operator.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterable

import numpy as np

from repro.ai.engine import AIEngine
from repro.ai.loader import (ColumnFeatures, ColumnTrainingSet,
                             table_feature_columns, table_training_set,
                             table_training_set_tail)
from repro.ai.model_manager import ModelManager
from repro.ai.monitor import Monitor
from repro.ai.tasks import FineTuneTask, InferenceTask, TrainTask
from repro.common import categories as cat
from repro.common.errors import (BindError, ExecutionError, NeurDBError,
                                 is_retryable)
from repro.common.faults import FaultPlan
from repro.common.simtime import SimClock
from repro.exec.executor import Executor, ResultSet
from repro.exec.expr import (RowLayout, compile_expr,
                             compile_predicate_batch, to_bool)
from repro.obs.explain import (explain_analyze, explain_plan,
                               explain_statement_trace)
from repro.obs.export import chrome_trace, dump_chrome_trace
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import Tracer
from repro.plan.optimizer import Planner
from repro.sql import ast
from repro.sql.parser import parse
from repro.storage.catalog import Catalog
from repro.storage.schema import Column, TableSchema


@dataclass(frozen=True)
class RetryPolicy:
    """How the facade retries transiently failed statements.

    A statement whose execution raises a *retryable* error
    (:func:`~repro.common.errors.is_retryable`: ``TransientError``,
    ``WorkerCrash``, ``ReplicaUnavailable``...) is re-executed up to
    ``max_retries`` times; each retry first charges an exponential
    backoff (``backoff * 2**(attempt-1)`` virtual seconds, category
    ``retry-backoff``) to the shared clock, so recovery cost is modeled
    like any other.  Retries re-execute the whole statement — safe for
    reads, and for writes because the storage layer raises its retryable
    errors before applying any mutation.
    """

    max_retries: int = 2
    backoff: float = 1e-3

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ValueError(
                f"max_retries must be >= 0, got {self.max_retries}")
        if self.backoff < 0:
            raise ValueError(f"backoff must be >= 0, got {self.backoff}")


@dataclass
class PredictContext:
    """Bound PREDICT statement: everything resolved except the data.

    Produced by :meth:`NeurDB.bind_predict` and shared between the
    facade's one-shot path and the serving subsystem (``repro/serve``),
    so both run bit-identical training, materialization, and output
    assembly.
    """

    statement: ast.Predict
    table: Any                     # HeapTable
    target: str
    feature_columns: list[str]
    layout: RowLayout
    feature_idx: list[int]
    model_name: str


class NeurDB:
    """An in-process NeurDB instance.

    ``predict_workers`` sets how many morsel workers materialize PREDICT
    training sets and inference inputs (1 = the streaming column scan).
    Charged virtual-time totals are parity-identical across worker counts;
    only the modeled makespan changes.

    ``refresh_window`` bounds how many of the table's most recent rows a
    background refresh fine-tunes on (:meth:`fine_tune_model`'s default
    window): on a regime shift the freshest rows carry the new
    distribution, so a sliding window adapts faster *and* cheaper than
    re-fitting the full history.  None (the default) preserves the
    historical full-table behavior.

    Robustness knobs (``docs/faults.md``): ``faults`` threads a seeded
    :class:`~repro.common.faults.FaultPlan` into the catalog (replica
    outages) and executor (worker crashes / transient task errors);
    ``replication`` backs every created table with a primary/backup
    :class:`~repro.storage.replica.ReplicatedTable`; ``retry_policy``
    makes :meth:`execute` retry transiently failed statements with
    charged exponential backoff.  Absorbed failures surface through
    :meth:`warnings`.
    """

    def __init__(self, num_runtimes: int = 1, buffer_pages: int = 4096,
                 seed: int = 0, predict_workers: int = 1,
                 refresh_window: int | None = None,
                 faults: FaultPlan | None = None,
                 replication: bool = False,
                 retry_policy: "RetryPolicy | int | None" = None,
                 tracing: bool = False, shards: int | None = None,
                 engine: str = "batch", nodes: int | None = None):
        if predict_workers < 1:
            raise ValueError(
                f"predict_workers must be >= 1, got {predict_workers}")
        if refresh_window is not None and refresh_window < 1:
            raise ValueError(
                f"refresh_window must be >= 1 or None, got {refresh_window}")
        if isinstance(retry_policy, int):
            retry_policy = RetryPolicy(max_retries=retry_policy)
        self.clock = SimClock()
        self.faults = faults
        self.retry_policy = retry_policy
        self.registry = MetricsRegistry()
        self.tracer: Tracer | None = None
        if tracing:
            self.tracer = Tracer()
            self.tracer.attach(self.clock)
        from repro.storage.buffer import BufferPool
        self.buffer_pool = BufferPool(capacity_pages=buffer_pages,
                                      clock=self.clock)
        self.catalog = Catalog(buffer_pool=self.buffer_pool,
                               clock=self.clock, replication=replication,
                               faults=faults, shards=shards)
        self.planner = Planner(self.catalog)
        self.executor = Executor(self.catalog, self.clock, engine=engine,
                                 faults=faults, registry=self.registry,
                                 nodes=nodes)
        self.monitor = Monitor()
        self.monitor.event_sink = self.registry
        self.registry.add_collector(self._collect_component_gauges)
        self.models = ModelManager(self.clock)
        self.ai_engine = AIEngine(model_manager=self.models,
                                  clock=self.clock,
                                  num_runtimes=num_runtimes,
                                  monitor=self.monitor)
        self.predict_workers = predict_workers
        self.refresh_window = refresh_window
        self._seed = seed
        self.query_retries = 0

    # -- public API ----------------------------------------------------------

    def execute(self, sql: str, force_retrain: bool = False) -> ResultSet:
        """Parse and run one SQL statement."""
        statement = parse(sql)
        return self.execute_statement(statement, force_retrain=force_retrain)

    def execute_script(self, sql: str) -> list[ResultSet]:
        """Run a ``;``-separated script; returns one result per statement."""
        from repro.sql.parser import parse_script
        return [self.execute_statement(s) for s in parse_script(sql)]

    def execute_statement(self, statement: ast.Statement,
                          force_retrain: bool = False) -> ResultSet:
        """Run one parsed statement under the connection's retry policy:
        transiently failed statements (injected faults, replica outages,
        exhausted scheduler budgets) are re-executed after a charged
        exponential backoff, up to ``retry_policy.max_retries`` times.
        Each retry is recorded in :meth:`warnings` and
        ``query_retries``."""
        policy = self.retry_policy
        attempt = 0
        while True:
            try:
                return self._dispatch_statement(statement, force_retrain)
            except Exception as exc:
                if (policy is None or not is_retryable(exc)
                        or attempt >= policy.max_retries):
                    raise
                attempt += 1
                self.query_retries += 1
                self.clock.advance(policy.backoff * (2 ** (attempt - 1)),
                                   cat.RETRY_BACKOFF)
                self.registry.counter("db.query_retries").inc()
                self.registry.event(
                    "db.retry",
                    f"retry {attempt}/{policy.max_retries} of "
                    f"{type(statement).__name__} after "
                    f"{type(exc).__name__}: {exc}",
                    time=self.clock.now,
                    statement=type(statement).__name__, attempt=attempt,
                    max_retries=policy.max_retries,
                    error=f"{type(exc).__name__}: {exc}")

    def _dispatch_statement(self, statement: ast.Statement,
                            force_retrain: bool = False) -> ResultSet:
        if isinstance(statement, ast.Select):
            plan = self.planner.plan_select(statement)
            return self.executor.run(plan)
        if isinstance(statement, ast.Insert):
            return self._run_insert(statement)
        if isinstance(statement, ast.Update):
            return self._run_update(statement)
        if isinstance(statement, ast.Delete):
            return self._run_delete(statement)
        if isinstance(statement, ast.CreateTable):
            return self._run_create_table(statement)
        if isinstance(statement, ast.DropTable):
            self.catalog.drop_table(statement.table, statement.if_exists)
            return _status(f"DROP TABLE {statement.table}")
        if isinstance(statement, ast.CreateIndex):
            self.catalog.create_index(statement.name, statement.table,
                                      statement.column, statement.kind)
            return _status(f"CREATE INDEX {statement.name}")
        if isinstance(statement, ast.Analyze):
            self.catalog.analyze(statement.table)
            return _status("ANALYZE")
        if isinstance(statement, ast.Predict):
            return self._run_predict(statement, force_retrain)
        if isinstance(statement, ast.Explain):
            return self._run_explain(statement, force_retrain)
        if isinstance(statement, (ast.Begin, ast.Commit, ast.Rollback)):
            # The facade runs autocommit; full concurrency control lives in
            # repro.txn / repro.txnsim where contention actually exists.
            return _status(type(statement).__name__.upper())
        raise NeurDBError(f"unsupported statement {type(statement).__name__}")

    # -- EXPLAIN [ANALYZE] ----------------------------------------------------

    def _run_explain(self, statement: ast.Explain,
                     force_retrain: bool) -> ResultSet:
        """``EXPLAIN`` renders the optimizer's plan without executing;
        ``EXPLAIN ANALYZE`` executes the wrapped statement under a
        statement-scoped tracer and annotates each operator with its
        charged virtual time by category, rows out, and buffer page
        touches — identically on every engine.  One row per output
        line; the structured form rides in ``extra['explain']``."""
        inner = statement.statement
        if not statement.analyze:
            if isinstance(inner, ast.Select):
                text = explain_plan(self.planner.plan_select(inner))
            else:
                text = f"{type(inner).__name__} (no plan tree)"
            return ResultSet(columns=["plan"],
                             rows=[(line,) for line in text.split("\n")],
                             extra={"analyze": False})
        tracer, previous = self._swap_tracer()
        try:
            with tracer.span(type(inner).__name__, "statement",
                             clock=self.clock):
                result = self._dispatch_statement(inner, force_retrain)
        finally:
            self._restore_tracer(previous)
        if isinstance(inner, ast.Select) and self.executor.last_run:
            plan, root_op = self.executor.last_run
            text, structured = explain_analyze(
                plan, root_op, tracer,
                parallel_stats=result.extra.get("parallel"),
                distributed_stats=result.extra.get("distributed"))
        else:
            text, structured = explain_statement_trace(tracer)
        return ResultSet(columns=["plan"],
                         rows=[(line,) for line in text.split("\n")],
                         virtual_seconds=result.virtual_seconds,
                         plan_text=result.plan_text,
                         extra={"analyze": True, "explain": structured,
                                "result_rowcount": len(result.rows)})

    # -- absorbed-failure surfacing -------------------------------------------

    def warnings(self) -> list[str]:
        """Failures this connection absorbed instead of raising: query
        retries under the retry policy, and drift-trigger callbacks that
        raised inside the monitor (which swallows them so observation
        never fails).  Empty on a healthy run — tests assert on it so
        nothing gets dropped silently.

        This is the rendered view over the metrics registry's structured
        event log (``registry.events(prefix="db.")`` and
        ``kind="monitor.trigger_error"``); the events carry the
        machine-readable fields."""
        return (self.registry.event_messages(prefix="db.")
                + self.registry.event_messages(kind="monitor.trigger_error"))

    def _warn(self, message: str) -> None:
        self.registry.event("db.warning", message, time=self.clock.now)

    # -- observability --------------------------------------------------------

    def metrics(self) -> dict:
        """One point-in-time snapshot of every metric series — scheduler
        retry/crash counters, buffer-pool gauges, fault-injection counts,
        serving stats (when a server registers), and the structured-event
        tail — via the unified :class:`~repro.obs.metrics.MetricsRegistry`."""
        return self.registry.snapshot()

    def _collect_component_gauges(self) -> dict[str, float]:
        gauges = {f"buffer.{key}": float(value)
                  for key, value in self.buffer_pool.snapshot().items()}
        if self.faults is not None:
            for kind, count in self.faults.counts().items():
                gauges[f"faults.injected{{kind={kind}}}"] = float(count)
        gauges["db.query_retries_total"] = float(self.query_retries)
        return gauges

    def profile(self, sql: str, path: str | None = None,
                force_retrain: bool = False) -> tuple[ResultSet, dict]:
        """Execute ``sql`` under a scoped tracer and return ``(result,
        chrome_trace_dict)`` — the Chrome trace-event JSON of the virtual
        worker/lane timeline (write it to ``path`` to open in
        ``chrome://tracing`` / Perfetto).  Tracing is observation-only:
        the result rows and charged totals are bit-identical to an
        unprofiled run."""
        tracer, previous = self._swap_tracer()
        try:
            with tracer.span(sql.strip(), "statement", clock=self.clock):
                result = self.execute(sql, force_retrain=force_retrain)
        finally:
            self._restore_tracer(previous)
        trace = (dump_chrome_trace(tracer, path) if path is not None
                 else chrome_trace(tracer))
        return result, trace

    def _swap_tracer(self) -> tuple[Tracer, "Tracer | None"]:
        """Attach a fresh statement-scoped tracer, returning it and the
        session tracer it displaced (if any)."""
        previous = self.clock.tracer
        tracer = Tracer()
        tracer.attach(self.clock)
        return tracer, previous

    def _restore_tracer(self, previous: "Tracer | None") -> None:
        """Put the session tracer back (re-seeding its float mirror from
        the clock, so its reconciliation invariant survives the scoped
        statement it did not observe) or detach entirely."""
        self.clock.tracer = None
        if previous is not None:
            previous.attach(self.clock)

    # -- DDL ------------------------------------------------------------------

    def _run_create_table(self, statement: ast.CreateTable) -> ResultSet:
        columns = [Column(c.name, c.dtype, unique=c.unique,
                          nullable=c.nullable) for c in statement.columns]
        shards: int | None = None
        partition: str | None = None
        for key, value in statement.options:
            if key == "shards":
                if not isinstance(value, int) or value < 1:
                    raise BindError(f"WITH option shards expects an integer "
                                    f">= 1, got {value!r}")
                shards = value
            elif key == "partition":
                partition = str(value)
            else:
                raise BindError(f"unknown CREATE TABLE option {key!r}; "
                                f"expected shards or partition")
        self.catalog.create_table(TableSchema(statement.table, columns),
                                  shards=shards, partition=partition)
        return _status(f"CREATE TABLE {statement.table}")

    # -- DML ------------------------------------------------------------------

    def _run_insert(self, statement: ast.Insert) -> ResultSet:
        table = self.catalog.table(statement.table)
        schema = table.schema
        if statement.columns:
            positions = [schema.index_of(c) for c in statement.columns]
        else:
            positions = list(range(len(schema)))
        empty_layout = RowLayout([])
        inserted = 0
        for value_row in statement.rows:
            if len(value_row) != len(positions):
                raise ExecutionError(
                    f"INSERT expects {len(positions)} values, "
                    f"got {len(value_row)}")
            full: list[Any] = [None] * len(schema)
            for position, expr in zip(positions, value_row):
                full[position] = compile_expr(expr, empty_layout)(())
            rid = table.insert(full)
            self._index_insert(statement.table, table.read(rid), rid)
            inserted += 1
        return _status(f"INSERT {inserted}", rowcount=inserted)

    def _run_update(self, statement: ast.Update) -> ResultSet:
        table = self.catalog.table(statement.table)
        schema = table.schema
        layout = RowLayout([(statement.table, c.name)
                            for c in schema.columns])
        predicate = (compile_expr(statement.where, layout)
                     if statement.where is not None else None)
        assignments = [(schema.index_of(col), compile_expr(expr, layout))
                       for col, expr in statement.assignments]
        victims: list[tuple] = []
        for rid, row in table.scan():
            if predicate is None or to_bool(predicate(row)):
                victims.append((rid, row))
        for rid, row in victims:
            new_row = list(row)
            for position, evaluator in assignments:
                new_row[position] = evaluator(row)
            self._index_delete(statement.table, row, rid)
            # a sharded update can move the row to another shard and
            # returns the fresh rid; heap updates return None (rid kept)
            rid = table.update(rid, new_row) or rid
            self._index_insert(statement.table, table.read(rid), rid)
        return _status(f"UPDATE {len(victims)}", rowcount=len(victims))

    def _run_delete(self, statement: ast.Delete) -> ResultSet:
        table = self.catalog.table(statement.table)
        layout = RowLayout([(statement.table, c.name)
                            for c in table.schema.columns])
        predicate = (compile_expr(statement.where, layout)
                     if statement.where is not None else None)
        victims = [(rid, row) for rid, row in table.scan()
                   if predicate is None or to_bool(predicate(row))]
        for rid, row in victims:
            self._index_delete(statement.table, row, rid)
            table.delete(rid)
        return _status(f"DELETE {len(victims)}", rowcount=len(victims))

    def _index_insert(self, table_name: str, row, rid) -> None:
        table = self.catalog.table(table_name)
        for entry in self.catalog.indexes_on(table_name):
            key = row[table.schema.index_of(entry.column)]
            entry.index.insert(key, rid)

    def _index_delete(self, table_name: str, row, rid) -> None:
        table = self.catalog.table(table_name)
        for entry in self.catalog.indexes_on(table_name):
            key = row[table.schema.index_of(entry.column)]
            entry.index.delete(key, rid)

    # -- PREDICT (the in-database AI analytics path) ------------------------------

    def _run_predict(self, statement: ast.Predict,
                     force_retrain: bool) -> ResultSet:
        ctx = self.bind_predict(statement)
        trained_now = self.ensure_predict_model(ctx, force_retrain)
        features, _, _ = self.prediction_inputs(ctx)
        if not features:
            return ResultSet(columns=ctx.feature_columns + [ctx.target],
                             rows=[], extra={"model": ctx.model_name})
        inference = self.ai_engine.infer(
            InferenceTask(model_name=ctx.model_name), features)
        return self.predict_result(ctx, features, inference.predictions,
                                    trained_now)

    def bind_predict(self, statement: ast.Predict) -> PredictContext:
        """Resolve a PREDICT statement against the catalog (no charges)."""
        table = self.catalog.table(statement.table)
        schema = table.schema
        target = statement.target.lower()
        if not schema.has_column(target):
            raise BindError(f"target column {target!r} not in "
                            f"{statement.table!r}")
        feature_columns = self._feature_columns(statement, schema)
        layout = RowLayout([(statement.table, c.name)
                            for c in schema.columns])
        feature_idx = [schema.index_of(c) for c in feature_columns]
        model_name = self._model_name(statement, feature_columns)
        return PredictContext(statement=statement, table=table,
                              target=target,
                              feature_columns=feature_columns,
                              layout=layout, feature_idx=feature_idx,
                              model_name=model_name)

    def ensure_predict_model(self, ctx: PredictContext,
                              force_retrain: bool = False) -> bool:
        """Train the bound model when missing (or forced); True if a
        training task actually ran."""
        if not force_retrain and self.models.has_model(ctx.model_name):
            return False
        train_rows, train_targets = self._training_data(ctx)
        if not train_rows:
            raise ExecutionError(
                "PREDICT has no training rows (check WITH filter and "
                "target NULLs)")
        batch_size = min(512, len(train_rows))
        # small tables need more passes to reach a useful step count;
        # large tables converge within the paper's 1-2 streaming epochs
        steps_wanted = 80
        epochs = max(2, min(100, round(steps_wanted * batch_size
                                       / len(train_rows))))
        task = TrainTask(model_name=ctx.model_name,
                         task_type=ctx.statement.task,
                         field_count=len(ctx.feature_columns),
                         epochs=epochs, batch_size=batch_size)
        train_result = self.ai_engine.train(task, train_rows, train_targets)
        self.catalog.bind_model(ctx.statement.table, ctx.target,
                                ctx.model_name)
        self._observe_losses(ctx.model_name, train_result.losses)
        return True

    def predict_result(self, ctx: PredictContext, features: ColumnFeatures,
                        predictions: np.ndarray,
                        trained_now: bool) -> ResultSet:
        """Assemble the PREDICT result set from columnar features plus raw
        model outputs — one shared definition, so the facade and the
        serving subsystem format bit-identically."""
        if ctx.statement.task == "classification":
            output = [int(p >= 0.5) for p in predictions]
        else:
            output = [float(p) for p in predictions]
        rows = [tuple(row) + (value,)
                for row, value in zip(features.rows(), output)]
        return ResultSet(columns=ctx.feature_columns + [ctx.target],
                         rows=rows,
                         extra={"model": ctx.model_name,
                                "trained_now": trained_now,
                                "probabilities": predictions})

    def fine_tune_model(self, table: str, target: str,
                        tune_last_layers: int = 2, epochs: int = 2,
                        learning_rate: float = 5e-3,
                        batch_size: int | None = None,
                        window_rows: int | None = None) -> None:
        """Explicitly trigger the FineTune operator for a bound PREDICT
        model, using the current table contents as the update data.

        ``learning_rate`` and ``batch_size`` tune the incremental update:
        adaptation to a drifted distribution wants a larger step and more
        gradient steps per epoch than the conservative defaults (the
        serving subsystem's refresh worker passes its own).

        ``window_rows`` restricts the update data to the table's most
        recent rows via a *tail scan*
        (:func:`~repro.ai.loader.table_training_set_tail`): only the
        trailing pages covering the window are read and charged, so the
        refresh cost tracks the window, not the table history.  It
        defaults to the connection-level ``refresh_window`` knob, and
        ``None`` there keeps the historical full-table behavior."""
        model_name = self.catalog.bound_model(table, target)
        if model_name is None:
            raise NeurDBError(f"no model bound for {table}.{target}")
        heap = self.catalog.table(table)
        schema = heap.schema
        model = self.models.load_model(model_name)
        feature_columns = [c for c in schema.non_unique_column_names()
                           if c != target.lower()][: model.field_count]
        window = (window_rows if window_rows is not None
                  else self.refresh_window)
        if window is not None:
            data = table_training_set_tail(heap, feature_columns, target,
                                           window, clock=self.clock,
                                           workers=self.predict_workers,
                                           faults=self.faults,
                                           retry_limit=self.executor
                                           .retry_limit)
        else:
            data = table_training_set(heap, feature_columns, target,
                                      clock=self.clock,
                                      workers=self.predict_workers,
                                      faults=self.faults,
                                      retry_limit=self.executor.retry_limit)
        if batch_size is None:
            batch_size = min(4096, max(1, len(data)))
        task = FineTuneTask(model_name=model_name,
                            tune_last_layers=tune_last_layers, epochs=epochs,
                            batch_size=max(1, batch_size),
                            learning_rate=learning_rate)
        self.ai_engine.fine_tune(task, data, data.targets)

    # -- PREDICT helpers ----------------------------------------------------------

    def _feature_columns(self, statement: ast.Predict,
                         schema: TableSchema) -> list[str]:
        target = statement.target.lower()
        if statement.train_on == ("*",):
            # the paper: '*' excludes unique-constrained columns
            return [c for c in schema.non_unique_column_names()
                    if c != target]
        columns = [c.lower() for c in statement.train_on]
        for column in columns:
            if not schema.has_column(column):
                raise BindError(f"TRAIN ON column {column!r} not in "
                                f"{schema.table_name!r}")
        if target in columns:
            raise BindError("target column cannot be a TRAIN ON feature")
        return columns

    def _model_name(self, statement: ast.Predict,
                    feature_columns: list[str]) -> str:
        # the feature set is part of the model identity: PREDICT with a
        # different TRAIN ON list must not reuse an incompatible model
        from repro.common.rng import stable_hash
        signature = stable_hash(tuple(feature_columns), 1 << 32)
        return (f"predict_{statement.table}_{statement.target}"
                f"_{signature:08x}").lower()

    def _training_data(self, ctx: PredictContext
                       ) -> tuple[ColumnTrainingSet, Any]:
        """Columnar training data: the loader scans in page batches
        (morsel-parallel when ``predict_workers > 1``), drops NULL-target
        rows, applies the vectorized WITH filter, and hands the AI layer
        column arrays instead of per-row tuples."""
        statement = ctx.statement
        predicate = (compile_predicate_batch(statement.train_filter,
                                             ctx.layout)
                     if statement.train_filter is not None else None)
        data = table_training_set(ctx.table, ctx.feature_columns,
                                  statement.target,
                                  block_predicate=predicate,
                                  clock=self.clock,
                                  workers=self.predict_workers,
                                  faults=self.faults,
                                  retry_limit=self.executor.retry_limit)
        return data, data.targets

    def prediction_inputs(self, ctx: PredictContext,
                           with_targets: bool = False
                           ) -> tuple[ColumnFeatures, Any, Any]:
        """Columnar inference inputs for a bound PREDICT.

        Returns ``(features, targets, target_null)``; the last two are
        None unless ``with_targets`` is set (the serving subsystem asks
        for them to score predictions against ground truth) or the inputs
        are inline VALUES rows (never any targets).  Charges are
        independent of ``with_targets``, so the facade and serving paths
        stay charge-identical.
        """
        statement = ctx.statement
        if statement.inline_rows:
            empty = RowLayout([])
            rows = []
            for value_row in statement.inline_rows:
                if len(value_row) != len(ctx.feature_idx):
                    raise ExecutionError(
                        f"VALUES row has {len(value_row)} values, expected "
                        f"{len(ctx.feature_idx)} features")
                rows.append(tuple(compile_expr(e, empty)(())
                                  for e in value_row))
            return (ColumnFeatures.from_rows(rows, len(ctx.feature_idx)),
                    None, None)
        predicate = (compile_predicate_batch(statement.where, ctx.layout)
                     if statement.where is not None else None)
        return table_feature_columns(
            ctx.table, ctx.feature_columns, block_predicate=predicate,
            target_column=ctx.target if with_targets else None,
            clock=self.clock, workers=self.predict_workers,
            faults=self.faults, retry_limit=self.executor.retry_limit)

    def _observe_losses(self, model_name: str,
                        losses: Iterable[float]) -> None:
        stream = f"loss:{model_name}"
        self.monitor.ensure_stream(stream, higher_is_better=False,
                                   threshold=0.5, window=5)
        for loss in losses:
            self.monitor.observe(stream, loss)


def _status(message: str, rowcount: int = 0) -> ResultSet:
    return ResultSet(columns=["status"], rows=[(message,)],
                     extra={"rowcount": rowcount})


def connect(num_runtimes: int = 1, buffer_pages: int = 4096,
            seed: int = 0, predict_workers: int = 1,
            refresh_window: int | None = None,
            faults: FaultPlan | None = None, replication: bool = False,
            retry_policy: "RetryPolicy | int | None" = None,
            tracing: bool = False, shards: int | None = None,
            engine: str = "batch", nodes: int | None = None) -> NeurDB:
    """Create a fresh in-process NeurDB instance.

    ``refresh_window``: fine-tune refreshes (manual or the serving
    subsystem's background ones) train on only the table's most recent
    rows; None = full table (the historical behavior).

    ``faults`` / ``replication`` / ``retry_policy``: the robustness
    knobs (``docs/faults.md``) — a seeded fault plan injected across the
    engine, primary/backup replication for every created table, and
    bounded retry of transiently failed statements (pass a
    :class:`RetryPolicy` or an int shorthand for ``max_retries``).

    ``tracing``: attach a session-wide :class:`~repro.obs.trace.Tracer`
    to the clock (``db.tracer``); observation-only, so results and
    charged totals stay bit-identical to an untraced session.

    ``shards``: default shard count for created tables — every CREATE
    TABLE hash-partitions across that many virtual nodes (see
    ``docs/distributed.md``); per-table ``WITH (shards=N,
    partition=col)`` overrides it.  None/1 = unsharded.

    ``engine`` / ``nodes``: the session executor's engine (one of
    :attr:`~repro.exec.executor.Executor.ENGINES`) and, for
    ``engine="distributed"``, the virtual node count.  ``connect(
    shards=4, engine="distributed", nodes=4)`` runs every SELECT —
    including under ``EXPLAIN ANALYZE`` — through shard-local pipeline
    fragments connected by modeled exchanges; results and charged
    compute totals stay bit-identical to the default batch engine.
    """
    return NeurDB(num_runtimes=num_runtimes, buffer_pages=buffer_pages,
                  seed=seed, predict_workers=predict_workers,
                  refresh_window=refresh_window, faults=faults,
                  replication=replication, retry_policy=retry_policy,
                  tracing=tracing, shards=shards, engine=engine, nodes=nodes)
