"""Tests for the autograd engine, layers, attention, losses, optimizers."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nn import (
    MLP,
    Adam,
    CrossAttentionBlock,
    Dropout,
    Embedding,
    LayerNorm,
    Linear,
    MultiHeadAttention,
    SGD,
    Sequential,
    Tensor,
    TransformerBlock,
    accuracy,
    auc_score,
    bce_with_logits,
    concat,
    mse_loss,
    numerical_gradient,
    pack_state,
    softmax_cross_entropy,
    stack,
    unpack_state,
)

RNG = np.random.default_rng(0)


def check_gradient(fn, shape, tolerance=1e-6, scale=1.0):
    """Compare autograd gradient against central differences."""
    x = Tensor(RNG.standard_normal(shape) * scale, requires_grad=True)
    out = fn(x)
    out.backward()
    numeric = numerical_gradient(lambda t: fn(t), x)
    assert np.abs(numeric - x.grad).max() < tolerance, (
        f"max grad error {np.abs(numeric - x.grad).max():.2e}")


class TestAutogradOps:
    def test_add_gradient(self):
        check_gradient(lambda x: (x + 3.0).sum(), (4, 3))

    def test_mul_gradient(self):
        check_gradient(lambda x: (x * x).sum(), (5,))

    def test_matmul_gradient(self):
        w = Tensor(RNG.standard_normal((3, 2)))
        check_gradient(lambda x: (x @ w).sum(), (4, 3))

    def test_broadcast_add_gradient(self):
        b = Tensor(RNG.standard_normal(3), requires_grad=True)
        x = Tensor(RNG.standard_normal((5, 3)))
        (x + b).sum().backward()
        assert b.grad.shape == (3,)
        assert np.allclose(b.grad, 5.0)

    def test_pow_gradient(self):
        check_gradient(lambda x: (x ** 3.0).sum(), (4,), scale=0.5)

    def test_relu_gradient_masks(self):
        x = Tensor(np.array([-1.0, 2.0]), requires_grad=True)
        x.relu().sum().backward()
        assert np.array_equal(x.grad, [0.0, 1.0])

    def test_sigmoid_tanh_exp_log_gradients(self):
        check_gradient(lambda x: x.sigmoid().sum(), (6,), 1e-5)
        check_gradient(lambda x: x.tanh().sum(), (6,), 1e-5)
        check_gradient(lambda x: x.exp().sum(), (6,), 1e-4, scale=0.5)
        check_gradient(lambda x: (x * x + 1.0).log().sum(), (6,), 1e-5)

    def test_sum_axis_keepdims(self):
        x = Tensor(RNG.standard_normal((2, 3, 4)), requires_grad=True)
        x.sum(axis=1).sum().backward()
        assert np.allclose(x.grad, 1.0)

    def test_mean_gradient(self):
        x = Tensor(np.ones((4, 5)), requires_grad=True)
        x.mean().backward()
        assert np.allclose(x.grad, 1.0 / 20)

    def test_max_gradient_routes_to_argmax(self):
        x = Tensor(np.array([[1.0, 5.0, 2.0]]), requires_grad=True)
        x.max(axis=1).sum().backward()
        assert np.array_equal(x.grad, [[0.0, 1.0, 0.0]])

    def test_reshape_transpose_gradients(self):
        check_gradient(lambda x: x.reshape(6).sum(), (2, 3))
        check_gradient(lambda x: (x.transpose(1, 0) * 2.0).sum(), (2, 3))

    def test_softmax_rows_sum_to_one(self):
        x = Tensor(RNG.standard_normal((4, 7)))
        probs = x.softmax(axis=-1).data
        assert np.allclose(probs.sum(axis=-1), 1.0)
        assert (probs >= 0).all()

    def test_log_softmax_gradient(self):
        check_gradient(lambda x: x.log_softmax(axis=-1).sum(), (3, 4), 1e-5)

    def test_gather_rows_gradient_accumulates(self):
        table = Tensor(np.zeros((5, 2)), requires_grad=True)
        out = table.gather_rows(np.array([1, 1, 3]))
        out.sum().backward()
        assert np.allclose(table.grad[1], 2.0)
        assert np.allclose(table.grad[3], 1.0)
        assert np.allclose(table.grad[0], 0.0)

    def test_concat_gradient_splits(self):
        a = Tensor(np.ones((2, 2)), requires_grad=True)
        b = Tensor(np.ones((2, 3)), requires_grad=True)
        concat([a, b], axis=1).sum().backward()
        assert a.grad.shape == (2, 2)
        assert b.grad.shape == (2, 3)

    def test_stack_gradient(self):
        a = Tensor(np.ones(3), requires_grad=True)
        b = Tensor(np.ones(3), requires_grad=True)
        stack([a, b]).sum().backward()
        assert np.allclose(a.grad, 1.0) and np.allclose(b.grad, 1.0)

    def test_backward_requires_scalar(self):
        x = Tensor(np.ones(3), requires_grad=True)
        with pytest.raises(ValueError):
            x.backward()

    def test_detach_breaks_graph(self):
        x = Tensor(np.ones(3), requires_grad=True)
        y = (x * 2.0).detach()
        assert y.requires_grad is False

    @given(st.integers(1, 5), st.integers(1, 5), st.integers(1, 5))
    @settings(max_examples=20, deadline=None)
    def test_matmul_shapes_property(self, a, b, c):
        x = Tensor(np.ones((a, b)))
        y = Tensor(np.ones((b, c)))
        assert (x @ y).shape == (a, c)
        assert np.allclose((x @ y).data, b)


class TestLayers:
    def test_linear_shapes(self):
        layer = Linear(4, 7, rng=RNG)
        assert layer(Tensor(np.zeros((3, 4)))).shape == (3, 7)

    def test_linear_no_bias(self):
        layer = Linear(4, 7, rng=RNG, bias=False)
        assert layer.bias is None
        assert layer(Tensor(np.zeros((1, 4)))).data.sum() == 0

    def test_embedding_lookup(self):
        emb = Embedding(10, 3, rng=RNG)
        out = emb(np.array([[1, 2], [3, 4]]))
        assert out.shape == (2, 2, 3)

    def test_embedding_out_of_range(self):
        emb = Embedding(10, 3, rng=RNG)
        with pytest.raises(IndexError):
            emb(np.array([10]))

    def test_layernorm_statistics(self):
        ln = LayerNorm(8)
        out = ln(Tensor(RNG.standard_normal((5, 8)) * 10 + 3)).data
        assert np.allclose(out.mean(axis=-1), 0.0, atol=1e-6)
        assert np.allclose(out.std(axis=-1), 1.0, atol=1e-2)

    def test_dropout_train_vs_eval(self):
        drop = Dropout(0.5, rng=np.random.default_rng(0))
        x = Tensor(np.ones((100, 10)))
        out_train = drop(x).data
        assert (out_train == 0).any()
        drop.eval()
        assert np.array_equal(drop(x).data, x.data)

    def test_sequential_indexing(self):
        seq = Sequential(Linear(2, 2, rng=RNG), Linear(2, 2, rng=RNG))
        assert len(seq) == 2
        assert isinstance(seq[0], Linear)

    def test_parameter_count(self):
        mlp = MLP([4, 8, 1], rng=RNG)
        assert mlp.parameter_count() == 4 * 8 + 8 + 8 * 1 + 1

    def test_state_dict_roundtrip(self):
        a = MLP([3, 5, 2], rng=np.random.default_rng(1))
        b = MLP([3, 5, 2], rng=np.random.default_rng(2))
        b.load_state_dict(a.state_dict())
        x = np.ones((2, 3))
        assert np.allclose(a(Tensor(x)).data, b(Tensor(x)).data)

    def test_state_dict_strict_mismatch(self):
        a = MLP([3, 5, 2], rng=RNG)
        with pytest.raises(KeyError):
            a.load_state_dict({"bogus": np.zeros(1)})

    def test_state_dict_shape_mismatch(self):
        a = MLP([3, 5, 2], rng=RNG)
        state = a.state_dict()
        key = next(iter(state))
        state[key] = np.zeros((1, 1))
        with pytest.raises(ValueError):
            a.load_state_dict(state)

    def test_zero_grad(self):
        mlp = MLP([2, 2], rng=RNG)
        loss = mse_loss(mlp(Tensor(np.ones((4, 2)))), np.zeros((4, 2)))
        loss.backward()
        assert any(p.grad is not None for p in mlp.parameters())
        mlp.zero_grad()
        assert all(p.grad is None for p in mlp.parameters())


class TestAttention:
    def test_mha_shape(self):
        mha = MultiHeadAttention(8, 2, rng=RNG)
        out = mha(Tensor(RNG.standard_normal((2, 5, 8))))
        assert out.shape == (2, 5, 8)

    def test_mha_rejects_bad_heads(self):
        with pytest.raises(ValueError):
            MultiHeadAttention(7, 2)

    def test_cross_attention_shapes(self):
        block = CrossAttentionBlock(8, 2, rng=RNG)
        q = Tensor(RNG.standard_normal((3, 4, 8)))
        ctx = Tensor(RNG.standard_normal((3, 9, 8)))
        assert block(q, ctx).shape == (3, 4, 8)

    def test_transformer_block_gradients_flow(self):
        block = TransformerBlock(8, 2, rng=RNG)
        x = Tensor(RNG.standard_normal((2, 3, 8)))
        block(x).sum().backward()
        for _, param in block.named_parameters():
            assert param.grad is not None

    def test_mha_gradient_check(self):
        mha = MultiHeadAttention(4, 2, rng=np.random.default_rng(3))
        q = Tensor(RNG.standard_normal((1, 3, 4)))
        w = mha.w_v.weight
        out = mha(q).sum()
        out.backward()
        analytic = w.grad.copy()

        def f(t):
            old = w.data.copy()
            w.data = t.data
            result = mha(q).sum()
            w.data = old
            return result
        numeric = numerical_gradient(f, Tensor(w.data.copy()), 1e-5)
        assert np.abs(numeric - analytic).max() < 1e-5


class TestLosses:
    def test_mse_zero_for_perfect(self):
        pred = Tensor(np.ones(5))
        assert mse_loss(pred, np.ones(5)).item() == 0.0

    def test_bce_symmetric_at_half(self):
        logits = Tensor(np.zeros(4))
        loss = bce_with_logits(logits, np.array([0.0, 1.0, 0.0, 1.0]))
        assert loss.item() == pytest.approx(np.log(2), rel=1e-6)

    def test_bce_extreme_logits_stable(self):
        logits = Tensor(np.array([100.0, -100.0]), requires_grad=True)
        loss = bce_with_logits(logits, np.array([1.0, 0.0]))
        loss.backward()
        assert np.isfinite(loss.item())
        assert np.isfinite(logits.grad).all()

    def test_softmax_ce_perfect_prediction(self):
        logits = Tensor(np.array([[10.0, -10.0], [-10.0, 10.0]]))
        loss = softmax_cross_entropy(logits, np.array([0, 1]))
        assert loss.item() < 1e-6

    def test_accuracy_binary_and_multiclass(self):
        assert accuracy(np.array([1.0, -1.0]), np.array([1, 0])) == 1.0
        logits = np.array([[2.0, 0.0], [0.0, 2.0]])
        assert accuracy(logits, np.array([0, 0])) == 0.5

    def test_auc_perfect_and_random(self):
        labels = np.array([0, 0, 1, 1])
        assert auc_score(np.array([0.1, 0.2, 0.8, 0.9]), labels) == 1.0
        assert auc_score(np.array([0.9, 0.8, 0.2, 0.1]), labels) == 0.0
        assert auc_score(np.array([1.0, 1.0]), np.array([1, 1])) == 0.5


class TestOptimizers:
    def _quadratic_descends(self, optimizer_cls, **kwargs):
        x = Tensor(np.array([5.0, -3.0]), requires_grad=True)
        optimizer = optimizer_cls([x], **kwargs)
        for _ in range(200):
            optimizer.zero_grad()
            loss = (x * x).sum()
            loss.backward()
            optimizer.step()
        return float((x.data ** 2).sum())

    def test_sgd_converges(self):
        assert self._quadratic_descends(SGD, lr=0.1) < 1e-6

    def test_sgd_momentum_converges(self):
        assert self._quadratic_descends(SGD, lr=0.05, momentum=0.9) < 1e-6

    def test_adam_converges(self):
        assert self._quadratic_descends(Adam, lr=0.1) < 1e-4

    def test_weight_decay_shrinks(self):
        x = Tensor(np.array([1.0]), requires_grad=True)
        optimizer = SGD([x], lr=0.1, weight_decay=0.5)
        for _ in range(50):
            optimizer.zero_grad()
            (x * 0.0).sum().backward()  # zero data gradient
            optimizer.step()
        assert abs(x.data[0]) < 0.1

    def test_optimizer_needs_parameters(self):
        with pytest.raises(ValueError):
            SGD([Tensor(np.ones(1))])  # requires_grad=False

    def test_mlp_learns_xor(self):
        rng = np.random.default_rng(0)
        mlp = MLP([2, 16, 1], rng=rng)
        X = np.array([[0, 0], [0, 1], [1, 0], [1, 1]], dtype=float)
        y = np.array([0.0, 1.0, 1.0, 0.0])
        optimizer = Adam(list(mlp.parameters()), lr=0.05)
        for _ in range(400):
            optimizer.zero_grad()
            logits = mlp(Tensor(X)).reshape(4)
            loss = bce_with_logits(logits, y)
            loss.backward()
            optimizer.step()
        predictions = (mlp(Tensor(X)).data.reshape(4) > 0).astype(float)
        assert np.array_equal(predictions, y)


class TestSerialize:
    def test_roundtrip(self):
        state = {"w": RNG.standard_normal((3, 4)), "b": np.zeros(4)}
        restored = unpack_state(pack_state(state))
        assert set(restored) == {"w", "b"}
        assert np.array_equal(restored["w"], state["w"])

    def test_scalar_array(self):
        state = {"s": np.array(3.14)}
        assert unpack_state(pack_state(state))["s"] == pytest.approx(3.14)

    def test_bad_magic(self):
        with pytest.raises(ValueError):
            unpack_state(b"XXXX" + b"\x00" * 10)

    @given(st.lists(st.tuples(
        st.text(alphabet="abcdef", min_size=1, max_size=8),
        st.integers(1, 5), st.integers(1, 5)),
        min_size=1, max_size=5, unique_by=lambda t: t[0]))
    @settings(max_examples=20, deadline=None)
    def test_roundtrip_property(self, specs):
        rng = np.random.default_rng(0)
        state = {name: rng.standard_normal((r, c))
                 for name, r, c in specs}
        restored = unpack_state(pack_state(state))
        for name in state:
            assert np.array_equal(restored[name], state[name])
