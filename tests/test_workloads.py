"""Tests for the workload generators: Avazu, Diabetes, YCSB, TPC-C, STATS."""

import numpy as np
import pytest

import repro
from repro.workloads.avazu import (
    FIELD_COUNT as AVAZU_FIELDS,
    NUM_CLUSTERS,
    AvazuGenerator,
    load_into_db as load_avazu,
)
from repro.workloads.diabetes import (
    FIELD_COUNT as DIABETES_FIELDS,
    DiabetesGenerator,
    load_into_db as load_diabetes,
)
from repro.workloads.stats import QUERIES, StatsGenerator, StatsScale, build_stats_db
from repro.workloads.tpcc import NEW_ORDER, PAYMENT, TPCCConfig, TPCCWorkload
from repro.workloads.ycsb import YCSBConfig, YCSBWorkload

SMALL_SCALE = StatsScale(users=80, posts=200, comments=300, votes=400,
                         badges=120, posthistory=200, postlinks=60, tags=20)


class TestAvazu:
    def test_record_shape(self):
        batch = AvazuGenerator(seed=0).generate(0, 100)
        assert len(batch.rows) == 100
        assert all(len(row) == AVAZU_FIELDS for row in batch.rows)

    def test_click_rate_calibrated(self):
        generator = AvazuGenerator(seed=0, click_rate=0.17)
        batch = generator.generate(0, 20_000)
        assert batch.labels.mean() == pytest.approx(0.17, abs=0.03)

    def test_deterministic(self):
        a = AvazuGenerator(seed=3).generate(1, 50, seed=9)
        b = AvazuGenerator(seed=3).generate(1, 50, seed=9)
        assert a.rows == b.rows
        assert np.array_equal(a.labels, b.labels)

    def test_clusters_have_different_concepts(self):
        """Same feature row must get different click probabilities under
        different clusters (concept drift, not just covariate shift)."""
        generator = AvazuGenerator(seed=0)
        w0 = generator._label_weights[0]
        w1 = generator._label_weights[1]
        assert not np.allclose(w0, w1)

    def test_invalid_cluster(self):
        with pytest.raises(ValueError):
            AvazuGenerator().generate(NUM_CLUSTERS, 10)

    def test_drift_stream_schedule(self):
        generator = AvazuGenerator(seed=0)
        clusters = [c for _, _, c in generator.drift_stream(100, 40)]
        assert clusters == [0, 0, 0, 1, 1, 1, 2, 2, 2, 3, 3, 3, 4, 4, 4]

    def test_load_into_db_runs_table1_query(self):
        db = repro.connect()
        load_avazu(db, AvazuGenerator(seed=0), cluster=0, count=300)
        assert db.execute("SELECT count(*) FROM avazu").scalar() == 300
        # the Table 1 Workload E statement, verbatim
        result = db.execute(
            "PREDICT VALUE OF click_rate FROM avazu TRAIN ON *")
        assert len(result.rows) == 300


class TestDiabetes:
    def test_record_shape(self):
        batch = DiabetesGenerator(seed=0).generate(50)
        assert all(len(row) == DIABETES_FIELDS for row in batch.rows)

    def test_positive_rate(self):
        batch = DiabetesGenerator(seed=0, positive_rate=0.35).generate(10_000)
        assert batch.labels.mean() == pytest.approx(0.35, abs=0.05)

    def test_signal_learnable(self):
        """Informative features must actually predict the label."""
        generator = DiabetesGenerator(seed=0)
        batch = generator.generate(4000)
        X = np.asarray(batch.rows)
        informative = X[:, generator._informative_idx]
        standardized = ((informative
                         - generator._means[generator._informative_idx])
                        / generator._scales[generator._informative_idx])
        scores = standardized @ generator._weights
        from repro.nn.losses import auc_score
        assert auc_score(scores, batch.labels) > 0.75

    def test_load_into_db_runs_table1_query(self):
        db = repro.connect()
        load_diabetes(db, DiabetesGenerator(seed=0), count=300)
        result = db.execute(
            "PREDICT CLASS OF outcome FROM diabetes TRAIN ON *")
        assert len(result.rows) == 300
        assert set(row[-1] for row in result.rows) <= {0, 1}


class TestYCSB:
    def test_transaction_shape(self):
        workload = YCSBWorkload(YCSBConfig(records=1000))
        txn = workload(np.random.default_rng(0))
        assert len(txn.ops) == 10
        assert sum(op.is_write for op in txn.ops) == 5

    def test_keys_in_range(self):
        workload = YCSBWorkload(YCSBConfig(records=500))
        rng = np.random.default_rng(0)
        for _ in range(50):
            txn = workload(rng)
            assert all(0 <= op.key < 500 for op in txn.ops)

    def test_zipf_skew(self):
        workload = YCSBWorkload(YCSBConfig(records=10_000, zipf_theta=0.99))
        rng = np.random.default_rng(0)
        keys = [op.key for _ in range(2000) for op in workload(rng).ops]
        hot_fraction = sum(1 for k in keys if k < 10) / len(keys)
        assert hot_fraction > 0.15  # top-10 of 10k keys dominate

    def test_uniform_when_theta_zero(self):
        workload = YCSBWorkload(YCSBConfig(records=10_000, zipf_theta=0.0))
        rng = np.random.default_rng(0)
        keys = [op.key for _ in range(2000) for op in workload(rng).ops]
        hot_fraction = sum(1 for k in keys if k < 10) / len(keys)
        assert hot_fraction < 0.01

    def test_config_validation(self):
        with pytest.raises(ValueError):
            YCSBConfig(records=0)


class TestTPCC:
    def test_key_segments_disjoint(self):
        w = TPCCWorkload(TPCCConfig(warehouses=4))
        assert w.warehouse_key(3) < w.district_key(0, 0)
        assert w.district_key(3, 9) < w.customer_key(0, 0, 0)
        assert w.customer_key(3, 9, 2999) < w.stock_key(0, 0)
        assert w.stock_key(3, 99_999) < w.item_key(0)

    def test_transaction_mix(self):
        workload = TPCCWorkload(TPCCConfig(warehouses=1,
                                           new_order_fraction=0.5))
        rng = np.random.default_rng(0)
        types = [workload(rng).type_id for _ in range(400)]
        new_order_fraction = types.count(NEW_ORDER) / len(types)
        assert 0.4 < new_order_fraction < 0.6

    def test_payment_writes_warehouse_hotspot(self):
        workload = TPCCWorkload(TPCCConfig(warehouses=1,
                                           new_order_fraction=0.0))
        rng = np.random.default_rng(0)
        txn = workload(rng)
        assert txn.type_id == PAYMENT
        assert txn.ops[0].key == workload.warehouse_key(0)
        assert txn.ops[0].is_write

    def test_new_order_structure(self):
        config = TPCCConfig(warehouses=2, new_order_fraction=1.0,
                            items_per_order=7)
        workload = TPCCWorkload(config)
        txn = workload(np.random.default_rng(0))
        assert txn.type_id == NEW_ORDER
        assert len(txn.ops) == 3 + 2 * 7
        writes = [op for op in txn.ops if op.is_write]
        assert len(writes) == 1 + 7  # district + stock lines

    def test_fewer_warehouses_more_contention(self):
        from repro.txnsim import TxnSimulator, OptimisticCC
        one = TxnSimulator(8, OptimisticCC(),
                           TPCCWorkload(TPCCConfig(warehouses=1)),
                           seed=1).run(0.005)
        many = TxnSimulator(8, OptimisticCC(),
                            TPCCWorkload(TPCCConfig(warehouses=8)),
                            seed=1).run(0.005)
        assert one.abort_rate > many.abort_rate


class TestStats:
    def test_build_creates_all_tables(self):
        db = build_stats_db(scale=SMALL_SCALE, seed=0)
        from repro.workloads.stats import TABLES
        for table in TABLES:
            assert db.catalog.has_table(table)
        assert len(db.catalog.table("users")) == SMALL_SCALE.users

    def test_queries_run_and_are_deterministic(self):
        db = build_stats_db(scale=SMALL_SCALE, seed=0)
        db2 = build_stats_db(scale=SMALL_SCALE, seed=0)
        for sql in QUERIES:
            assert db.execute(sql).scalar() == db2.execute(sql).scalar()

    def test_score_reputation_correlation(self):
        db = build_stats_db(scale=SMALL_SCALE, seed=0)
        rep = {row[0]: row[1] for _, row in db.catalog.table("users").scan()}
        pairs = [(rep[row[1]], row[2])
                 for _, row in db.catalog.table("posts").scan()]
        reps, scores = zip(*pairs)
        corr = np.corrcoef(reps, scores)[0, 1]
        assert corr > 0.3

    def test_mild_drift_modifies_less_than_severe(self):
        db_mild = build_stats_db(scale=SMALL_SCALE, seed=0)
        db_severe = build_stats_db(scale=SMALL_SCALE, seed=0)
        generator = StatsGenerator(scale=SMALL_SCALE, seed=0)
        mild = generator.apply_drift(db_mild, "mild")
        severe = generator.apply_drift(db_severe, "severe")
        assert severe > mild > 0

    def test_severe_drift_grows_posts(self):
        db = build_stats_db(scale=SMALL_SCALE, seed=0)
        before = len(db.catalog.table("posts"))
        StatsGenerator(scale=SMALL_SCALE, seed=0).apply_drift(db, "severe")
        assert len(db.catalog.table("posts")) > before * 2

    def test_invalid_severity(self):
        db = build_stats_db(scale=SMALL_SCALE, seed=0)
        with pytest.raises(ValueError):
            StatsGenerator(scale=SMALL_SCALE).apply_drift(db, "extreme")

    def test_queries_still_valid_after_drift(self):
        db = build_stats_db(scale=SMALL_SCALE, seed=0)
        StatsGenerator(scale=SMALL_SCALE, seed=0).apply_drift(db, "severe")
        for sql in QUERIES:
            result = db.execute(sql)
            assert result.scalar() >= 0
