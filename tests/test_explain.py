"""EXPLAIN / EXPLAIN ANALYZE over charged virtual time.

Acceptance contract (docs/observability.md):

* ``EXPLAIN ANALYZE`` executes the statement and annotates every plan
  operator with charged time by category, rows out, and page touches;
  the per-operator figures plus the ``(other)`` bucket reconcile
  *exactly* with the statement's trace totals (they are computed from
  the same fixed-point sums — an empty ``other`` means every charged
  unit of the 3-table query was attributed to an operator).
* The annotated tree has the identical shape (labels, depth, rows out)
  on every engine; within the batch family (fused, unfused, parallel at
  any worker count) the charged figures are bit-identical, because
  those engines issue the identical ``advance_batch`` sequence.  The
  row engine charges per row instead of per block, so its float sums
  legitimately differ in the last ulp.
* Plain ``EXPLAIN`` renders the estimated plan without executing, and
  ``EXPLAIN`` cannot wrap another ``EXPLAIN``.
"""

from __future__ import annotations

import pytest

import repro
from repro.common.errors import ParseError
from repro.exec.executor import Executor

ENGINE_CONFIGS = [
    ("row", {}),
    ("batch", {}),
    ("batch", {"fused": False}),
    ("parallel", {"workers": 1}),
    ("parallel", {"workers": 2}),
    ("parallel", {"workers": 4}),
]

# engines that share the per-block charge sequence and therefore the
# exact per-operator figures (the row engine charges per row)
BATCH_FAMILY = [(e, k) for e, k in ENGINE_CONFIGS if e != "row"]

THREE_TABLE_QUERY = (
    "SELECT u.city AS city, count(*) AS n, sum(o.amount) AS amt, "
    "max(t.price) AS top FROM users u "
    "JOIN orders o ON u.id = o.user_id "
    "JOIN items t ON o.item_id = t.iid "
    "WHERE o.amount > 20 GROUP BY u.city ORDER BY city"
)


def _build_db():
    db = repro.connect()
    db.execute("CREATE TABLE users (id INT UNIQUE, name TEXT, age INT, "
               "city TEXT)")
    db.execute("CREATE TABLE orders (oid INT UNIQUE, user_id INT, "
               "amount FLOAT, item_id INT)")
    db.execute("CREATE TABLE items (iid INT UNIQUE, label TEXT, "
               "price FLOAT)")
    for i in range(40):
        db.execute(f"INSERT INTO users VALUES ({i}, 'user{i}', "
                   f"{20 + i % 30}, 'c{i % 4}')")
    for i in range(30):
        db.execute(f"INSERT INTO items VALUES ({i}, 'item{i}', "
                   f"{round(1.5 * i, 2)})")
    for i in range(120):
        db.execute(f"INSERT INTO orders VALUES ({i}, {i % 40}, "
                   f"{round(i * 2.0 + 1, 2)}, {i % 30})")
    db.execute("ANALYZE")
    return db


def _swap_engine(db, engine, kwargs):
    db.executor = Executor(db.catalog, db.clock, engine=engine,
                           registry=db.registry, **kwargs)


def _analyze(db, sql=THREE_TABLE_QUERY):
    """Warm run, then EXPLAIN ANALYZE; returns (plain_rows, result)."""
    plain = db.execute(sql)
    result = db.execute("EXPLAIN ANALYZE " + sql)
    return plain.rows, result


def _shape(structured):
    return [(n["label"], n["depth"], n["rows_out"])
            for n in structured["nodes"]]


# -- plain EXPLAIN -------------------------------------------------------------


class TestPlainExplain:
    def test_renders_plan_without_executing(self):
        db = _build_db()
        before = dict(db.clock.breakdown())
        result = db.execute("EXPLAIN " + THREE_TABLE_QUERY)
        assert result.extra["analyze"] is False
        text = "\n".join(row[0] for row in result.rows)
        assert "Aggregate" in text and "SeqScan" in text
        # nothing executed: no actual-row annotations, no new scan charges
        assert "actual:" not in text
        after = dict(db.clock.breakdown())
        assert after.get("scan", 0.0) == before.get("scan", 0.0)

    def test_explain_non_select_has_no_plan_tree(self):
        db = _build_db()
        result = db.execute("EXPLAIN INSERT INTO users VALUES "
                            "(900, 'x', 1, 'c0')")
        assert result.extra["analyze"] is False
        assert "no plan tree" in result.rows[0][0]
        # and the INSERT did not run
        assert db.execute(
            "SELECT count(*) FROM users WHERE id = 900").rows[0][0] == 0

    def test_explain_cannot_wrap_explain(self):
        db = _build_db()
        with pytest.raises(ParseError):
            db.execute("EXPLAIN EXPLAIN SELECT * FROM users")


# -- EXPLAIN ANALYZE: the acceptance query on every engine ---------------------


class TestExplainAnalyze:
    @pytest.mark.parametrize("engine,kwargs", ENGINE_CONFIGS,
                             ids=[f"{e}-{k}" for e, k in ENGINE_CONFIGS])
    def test_operators_reconcile_exactly(self, engine, kwargs):
        """Per-operator charges plus ``(other)`` equal the statement's
        trace totals; for this pure SELECT the ``other`` bucket is empty
        — every charged unit is attributed to an operator — and the
        plain run's rows are accounted for in ``result_rowcount``."""
        db = _build_db()
        _swap_engine(db, engine, kwargs)
        plain_rows, result = _analyze(db)
        structured = result.extra["explain"]

        assert result.extra["analyze"] is True
        assert result.extra["result_rowcount"] == len(plain_rows) > 0
        assert structured["nodes"], "no annotated operators"
        assert structured["other"] == {}, (
            "charges escaped operator attribution")
        assert structured["total"] > 0
        for node in structured["nodes"]:
            assert node["rows_out"] is not None
            assert node["time"] >= 0
            assert set(node["charged"]) <= set(structured["totals"])

        text = "\n".join(row[0] for row in result.rows)
        assert text.startswith("total charged:")
        assert "by category:" in text
        assert text.count("actual:") == len(structured["nodes"])
        assert "charged [" in text

    def test_tree_shape_identical_across_engines(self):
        """Labels, depths, and rows-out match on all six configs; the
        per-operator charged figures are bit-identical within the batch
        family (same ``advance_batch`` sequence)."""
        shapes = {}
        batch_figures = {}
        for engine, kwargs in ENGINE_CONFIGS:
            db = _build_db()
            _swap_engine(db, engine, kwargs)
            _, result = _analyze(db)
            structured = result.extra["explain"]
            key = f"{engine}-{kwargs}"
            shapes[key] = _shape(structured)
            if (engine, kwargs) in BATCH_FAMILY:
                batch_figures[key] = [
                    (n["charged"], n["time"], n["pages"])
                    for n in structured["nodes"]]
            assert structured["other"] == {}

        reference = next(iter(shapes.values()))
        for key, shape in shapes.items():
            assert shape == reference, key

        batch_reference = next(iter(batch_figures.values()))
        for key, figures in batch_figures.items():
            assert figures == batch_reference, key

    def test_parallel_run_reports_workers_and_tasks(self):
        db = _build_db()
        _swap_engine(db, "parallel", {"workers": 4, "morsel_rows": 16})
        _, result = _analyze(db)
        structured = result.extra["explain"]
        assert structured["parallel"] is not None
        assert structured["parallel"]["workers"] == 4
        assert structured["tasks"] > 0
        text = "\n".join(row[0] for row in result.rows)
        assert "parallel: workers=4" in text

    def test_session_results_unchanged_by_explain_analyze(self):
        """Running EXPLAIN ANALYZE between two plain runs leaves the
        plain results bit-identical — the scoped tracer observes, it
        does not route."""
        db = _build_db()
        first = db.execute(THREE_TABLE_QUERY).rows
        db.execute("EXPLAIN ANALYZE " + THREE_TABLE_QUERY)
        second = db.execute(THREE_TABLE_QUERY).rows
        typed = lambda rows: [tuple((type(v), v) for v in r) for r in rows]
        assert typed(first) == typed(second)


# -- EXPLAIN ANALYZE fallback for statements without a plan tree ---------------


class TestExplainAnalyzeFallback:
    def test_insert_renders_category_totals(self):
        db = _build_db()
        result = db.execute("EXPLAIN ANALYZE INSERT INTO users VALUES "
                            "(901, 'y', 2, 'c1')")
        assert result.extra["analyze"] is True
        structured = result.extra["explain"]
        assert structured["nodes"] == []
        assert structured["totals"], "insert charged nothing?"
        assert structured["total"] > 0
        text = "\n".join(row[0] for row in result.rows)
        assert text.startswith("total charged:")
        # and the INSERT really executed
        assert db.execute(
            "SELECT count(*) FROM users WHERE id = 901").rows[0][0] == 1
