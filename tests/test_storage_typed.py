"""Typed columnar storage v2: property-based differential round-trips.

The invariant under test (``docs/storage.md``): the typed at-rest layout
— int64/float64/bool arrays with validity bitmaps, dictionary-encoded
strings — is *representation only*.  For every randomized schema and
content mix, writing rows and reading them back through any surface
(``scan``, ``scan_batches``, ``scan_column_batches``, per-page
``typed_columns``) returns bit-identical values (types included),
identical RecordIds, and validity bitmaps that match the NULLs exactly.

The case grid is seeded and env-selectable like the fault sweep: set
``STORAGE_SEED`` to shift every case's value stream (CI runs a 3-seed
matrix).  The grid crosses column-type shapes with NULL densities
0 / 0.1 / 1.0 and table sizes from empty through multi-page, plus
dictionary-overflow and huge-int regimes — well over 100 combos per
seed.
"""

from __future__ import annotations

import itertools
import os
import random

import numpy as np
import pytest

import repro
from repro.storage import (
    PAGE_CAPACITY_BYTES,
    PAGE_DICT_CAP,
    Column,
    DataType,
    HeapTable,
    TableSchema,
    TypedColumn,
)

STORAGE_SEED = int(os.environ.get("STORAGE_SEED", "0"))

# value regimes a column can draw from; "clean" regimes must never fall
# back to the object layout
INT_SMALL = "int-small"        # clean int64
INT_HUGE = "int-huge"          # beyond 2^63: object fallback territory
FLOAT_CLEAN = "float-clean"    # clean float64
FLOAT_NAN = "float-nan"        # NaN payloads: object fallback territory
TEXT_SMALL = "text-small"      # few distinct values: dictionary-coded
TEXT_WIDE = "text-wide"        # > PAGE_DICT_CAP distinct per page: object
BOOL = "bool"

_CLEAN = {INT_SMALL: "i8", FLOAT_CLEAN: "f8", BOOL: "bool"}
_REGIME_DTYPE = {
    INT_SMALL: DataType.INT, INT_HUGE: DataType.INT,
    FLOAT_CLEAN: DataType.FLOAT, FLOAT_NAN: DataType.FLOAT,
    TEXT_SMALL: DataType.TEXT, TEXT_WIDE: DataType.TEXT,
    BOOL: DataType.BOOL,
}

SHAPES = [
    (INT_SMALL,),
    (FLOAT_CLEAN,),
    (TEXT_SMALL,),
    (BOOL,),
    (INT_SMALL, FLOAT_CLEAN, TEXT_SMALL),
    (TEXT_SMALL, BOOL, INT_SMALL, FLOAT_CLEAN),
    (INT_HUGE, INT_SMALL),
    (FLOAT_NAN, FLOAT_CLEAN),
    (TEXT_WIDE, TEXT_SMALL),
]
DENSITIES = [0.0, 0.1, 1.0]
SIZES = [0, 1, 7, 350, 900]

# 9 shapes x 3 NULL densities x 5 sizes = 135 combos per seed
CASES = list(itertools.product(range(len(SHAPES)), DENSITIES, SIZES))


def _draw(rng: random.Random, regime: str, null_density: float):
    if null_density >= 1.0 or rng.random() < null_density:
        return None
    if regime == INT_SMALL:
        return rng.randint(-10_000, 10_000)
    if regime == INT_HUGE:
        # mostly in-range, occasionally past int64 (object fallback)
        return rng.choice([rng.randint(-50, 50), 2 ** 63 + rng.randint(0, 9)])
    if regime == FLOAT_CLEAN:
        return rng.uniform(-1e6, 1e6)
    if regime == FLOAT_NAN:
        return float("nan") if rng.random() < 0.2 else rng.uniform(-1, 1)
    if regime == TEXT_SMALL:
        return f"tag-{rng.randint(0, 12)}"
    if regime == TEXT_WIDE:
        return f"wide-{rng.randint(0, 10_000)}"
    if regime == BOOL:
        return rng.random() < 0.5
    raise AssertionError(regime)


def _build(shape, null_density: float, rows: int, seed: int):
    schema = TableSchema("t", [
        Column(f"c{i}", _REGIME_DTYPE[r]) for i, r in enumerate(shape)])
    table = HeapTable(schema)
    rng = random.Random(seed)
    data = [tuple(_draw(rng, r, null_density) for r in shape)
            for _ in range(rows)]
    for row in data:
        table.insert(row)
    return table, data


def _typed_rows(rows):
    """(type, value) pairs — equality on these is bit-identity for our
    scalar types (True != 1, '5' != 5, NaN compared by type+repr)."""
    return [tuple((type(v), repr(v)) for v in row) for row in rows]


def _reassemble(table, batch_size):
    out = []
    for columns, n in table.scan_column_batches(batch_size):
        for col in columns:
            assert isinstance(col, TypedColumn)
            assert len(col) == n
        out.extend(zip(*(c.tolist() for c in columns)) if columns
                   else [()] * n)
    return out


@pytest.mark.parametrize("case", range(len(CASES)))
def test_roundtrip_property(case):
    shape_idx, density, rows = CASES[case]
    shape = SHAPES[shape_idx]
    seed = STORAGE_SEED * 100_000 + case
    table, data = _build(shape, density, rows, seed)

    # row scan returns the exact inserted values, types included
    scanned = [row for _, row in table.scan()]
    assert _typed_rows(scanned) == _typed_rows(data)

    # RecordIds are stable across scans and across typed-cache builds
    rids = [rid for rid, _ in table.scan()]
    for batch_size in (1, 64, 1024):
        assert _typed_rows(_reassemble(table, batch_size)) == \
            _typed_rows(data)
    assert [rid for rid, _ in table.scan()] == rids

    # batch row scan agrees with the row scan
    batched = [r for batch in table.scan_batches(128) for r in batch]
    assert _typed_rows(batched) == _typed_rows(data)

    # per-page typed views: dtypes, validity, and objects() round-trip
    for page in table._pages:
        live = page.live_rows()
        typed = page.typed_columns(table.schema.dtypes())
        if not live:
            assert typed == []
            continue
        for idx, (regime, col) in enumerate(zip(shape, typed)):
            values = [row[idx] for row in live]
            # validity bitmap matches the NULLs exactly
            nulls = col.null_mask()
            assert nulls.dtype == np.bool_
            assert nulls.tolist() == [v is None for v in values]
            # object view is value- and type-identical
            assert _typed_rows([(v,) for v in col.objects()]) == \
                _typed_rows([(v,) for v in values])
            clean_kind = _CLEAN.get(regime)
            if clean_kind is not None:
                # clean numerics must stay typed — never silently fall
                # back to the object layout
                assert col.kind == clean_kind, (
                    f"case {case}: {regime} page column stored as "
                    f"{col.kind!r}")
                assert col.data.dtype in (np.int64, np.float64, np.bool_)
            if regime == TEXT_SMALL:
                non_null = [v for v in values if v is not None]
                if non_null:
                    assert col.kind == "dict"
                    assert len(col.dictionary) <= PAGE_DICT_CAP
                    # first-seen dictionary order, codes resolve exactly
                    assert col.dictionary == \
                        list(dict.fromkeys(non_null))
                    assert col.data.dtype == np.int32


@pytest.mark.parametrize("density", DENSITIES)
def test_dictionary_overflow_falls_back_per_page(density):
    """> PAGE_DICT_CAP distinct strings on a page: the page keeps the
    object layout, and values still round-trip bit-identically."""
    rng = random.Random(STORAGE_SEED + 1)
    schema = TableSchema("t", [Column("s", DataType.TEXT)])
    table = HeapTable(schema)
    data = []
    for i in range(PAGE_DICT_CAP * 3):
        v = None if rng.random() < density else f"unique-{i}"
        data.append((v,))
        table.insert((v,))
    assert _typed_rows([r for _, r in table.scan()]) == _typed_rows(data)
    assert _typed_rows(_reassemble(table, 256)) == _typed_rows(data)
    overflow_pages = 0
    for page in table._pages:
        live = page.live_rows()
        distinct = {r[0] for r in live if r[0] is not None}
        (col,) = page.typed_columns(schema.dtypes())
        if len(distinct) > PAGE_DICT_CAP:
            assert col.kind == "obj"
            overflow_pages += 1
        elif distinct:
            assert col.kind == "dict"
    if density < 1.0:
        assert overflow_pages > 0, "case never exercised the overflow"


def test_single_row_pages():
    """Strings near page capacity force one row per page; every surface
    still round-trips and each page carries a one-row typed view."""
    schema = TableSchema("t", [Column("i", DataType.INT),
                               Column("s", DataType.TEXT)])
    table = HeapTable(schema)
    big = "x" * (PAGE_CAPACITY_BYTES // 2 + 1)
    data = [(i, big + str(i)) for i in range(6)]
    for row in data:
        table.insert(row)
    assert table.page_count == len(data)
    for page in table._pages:
        cols = page.typed_columns(schema.dtypes())
        assert [len(c) for c in cols] == [1, 1]
        assert cols[0].kind == "i8" and cols[1].kind == "dict"
    assert _typed_rows(_reassemble(table, 4)) == _typed_rows(data)


def test_empty_table_surfaces():
    schema = TableSchema("t", [Column("i", DataType.INT),
                               Column("f", DataType.FLOAT)])
    table = HeapTable(schema)
    assert list(table.scan()) == []
    assert list(table.scan_batches(16)) == []
    assert list(table.scan_column_batches(16)) == []
    assert table.scan_morsels() == []


def test_mutations_keep_differential_identity():
    """Delete/update churn: the typed views track the row store exactly
    (version-keyed caches rebuild, never serve stale data)."""
    rng = random.Random(STORAGE_SEED * 7 + 3)
    schema = TableSchema("t", [Column("i", DataType.INT),
                               Column("g", DataType.TEXT),
                               Column("v", DataType.FLOAT)])
    table = HeapTable(schema)
    rids = []
    expected = {}
    for i in range(400):
        row = (i, f"g{i % 5}", i / 7.0)
        rid = table.insert(row)
        rids.append(rid)
        expected[rid] = row
    for _ in range(120):
        rid = rng.choice(list(expected))
        if rng.random() < 0.5:
            table.delete(rid)
            del expected[rid]
        else:
            row = (rng.randint(10_000, 20_000), None, rng.uniform(0, 1))
            table.update(rid, row)
            expected[rid] = row
        want = [expected[r] for r in rids if r in expected]
        assert _typed_rows(_reassemble(table, 128)) == _typed_rows(want)
        assert _typed_rows([r for _, r in table.scan()]) == \
            _typed_rows(want)


class TestViewCacheInvalidation:
    """The typed-view cache contract: page typed views and the table's
    merged scan columns are keyed by mutation versions — a scan after
    any insert/update/delete/drop sees fresh data, never a stale view,
    and the buffer pool's view counters expose the rebuild traffic."""

    @staticmethod
    def _fixture():
        from repro.storage import BufferPool
        pool = BufferPool(capacity_pages=64)
        schema = TableSchema("t", [Column("i", DataType.INT),
                                   Column("g", DataType.TEXT),
                                   Column("v", DataType.FLOAT)])
        table = HeapTable(schema, buffer_pool=pool)
        for i in range(50):
            table.insert((i, f"g{i % 3}", i / 2.0))
        return pool, table

    @staticmethod
    def _snapshot(table):
        return [tuple(map(repr, row))
                for columns, _ in table.scan_column_batches(16)
                for row in zip(*(c.tolist() for c in columns))]

    def test_insert_invalidates(self):
        pool, table = self._fixture()
        before = self._snapshot(table)        # caches now warm
        assert self._snapshot(table) == before
        assert pool.view_hit_ratio() > 0
        table.insert((99, "fresh", 9.5))
        after = self._snapshot(table)
        assert len(after) == len(before) + 1
        assert after[-1] == tuple(map(repr, (99, "fresh", 9.5)))

    def test_update_and_delete_invalidate(self):
        pool, table = self._fixture()
        rids = [rid for rid, _ in table.scan()]
        self._snapshot(table)
        rebuilds = pool.table_view_rebuilds("t")
        table.update(rids[0], (1000, None, -1.0))
        table.delete(rids[1])
        rows = self._snapshot(table)
        assert tuple(map(repr, (1000, None, -1.0))) in rows
        assert len(rows) == 49
        assert not any(r[0] == repr(1) for r in rows)
        # only the mutated page's view rebuilt; the rest were hits
        assert pool.table_view_rebuilds("t") > rebuilds

    def test_unchanged_rescans_are_view_hits(self):
        pool, table = self._fixture()
        self._snapshot(table)
        hits_before = pool.snapshot()["view_hit_ratio"]
        for _ in range(3):
            self._snapshot(table)
        assert pool.snapshot()["view_hit_ratio"] >= hits_before
        assert pool.table_view_rebuilds("t") == table.page_count

    def test_numeric_view_never_stale_through_executor(self):
        """End to end through SQL: a numeric filter answered from the
        typed float64 view reflects every mutation, including DROP +
        recreate under the same table name."""
        db = repro.connect()
        db.execute("CREATE TABLE t (i INT, v FLOAT)")
        for i in range(20):
            db.execute(f"INSERT INTO t VALUES ({i}, {i / 4.0})")
        assert db.execute("SELECT count(*) FROM t WHERE v > 2.0").rows \
            == [(11,)]
        db.execute("INSERT INTO t VALUES (100, 50.0)")
        assert db.execute("SELECT count(*) FROM t WHERE v > 2.0").rows \
            == [(12,)]
        db.execute("DROP TABLE t")
        db.execute("CREATE TABLE t (i INT, v FLOAT)")
        db.execute("INSERT INTO t VALUES (1, 3.0)")
        assert db.execute("SELECT i, v FROM t WHERE v > 2.0").rows \
            == [(1, 3.0)]


def test_typed_column_identical_is_bit_level():
    a = TypedColumn.from_values([1, None, 3], DataType.INT)
    b = TypedColumn.from_values([1, None, 3], DataType.INT)
    c = TypedColumn.from_values([1, None, 4], DataType.INT)
    assert a.identical(b) and not a.identical(c)
    # dictionary order is part of the layout
    d1 = TypedColumn.from_values(["x", "y"], DataType.TEXT)
    d2 = TypedColumn.from_values(["y", "x"], DataType.TEXT)
    assert not d1.identical(d2)
    # NaN payloads compare identical to themselves on the object path
    n1 = TypedColumn.from_values([float("nan"), 1.0], DataType.FLOAT)
    n2 = TypedColumn.from_values([float("nan"), 1.0], DataType.FLOAT)
    assert n1.kind == "obj" and n1.identical(n2)
