"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

import repro
from repro.storage import Catalog, Column, DataType, TableSchema


@pytest.fixture
def catalog() -> Catalog:
    return Catalog()


@pytest.fixture
def users_orders_db():
    """A NeurDB with two small joined tables, analyzed and indexed."""
    db = repro.connect()
    db.execute("CREATE TABLE users (id INT UNIQUE, name TEXT, age INT, "
               "city TEXT)")
    db.execute("CREATE TABLE orders (oid INT UNIQUE, user_id INT, "
               "amount FLOAT, status TEXT)")
    rng = np.random.default_rng(42)
    cities = ["sg", "ny", "ldn", "tok"]
    statuses = ["paid", "open", "void"]
    for i in range(60):
        db.execute(f"INSERT INTO users VALUES ({i}, 'user{i}', "
                   f"{20 + i % 40}, '{cities[i % 4]}')")
    for i in range(200):
        db.execute(f"INSERT INTO orders VALUES ({i}, {i % 60}, "
                   f"{round(float(i) * 1.5 + 1, 2)}, "
                   f"'{statuses[i % 3]}')")
    db.execute("CREATE INDEX idx_users_id ON users (id)")
    db.execute("ANALYZE")
    return db


@pytest.fixture
def simple_schema() -> TableSchema:
    return TableSchema("t", [
        Column("id", DataType.INT, unique=True),
        Column("name", DataType.TEXT),
        Column("score", DataType.FLOAT),
        Column("active", DataType.BOOL),
    ])
