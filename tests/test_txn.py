"""Tests for the transaction substrate: lock manager, MVCC, and the
discrete-event concurrency simulator."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.errors import TransactionAborted
from repro.txn import LockManager, LockMode, MVCCStore
from repro.txnsim import (
    ActionType,
    OptimisticCC,
    Operation,
    SerializableSnapshotIsolation,
    Transaction,
    TwoPhaseLocking,
    TxnSimulator,
)
from repro.workloads.ycsb import YCSBConfig, YCSBWorkload


class TestLockManager:
    def test_shared_locks_compatible(self):
        lm = LockManager()
        assert lm.acquire(1, "k", LockMode.SHARED)
        assert lm.acquire(2, "k", LockMode.SHARED)

    def test_exclusive_conflicts(self):
        lm = LockManager()
        assert lm.acquire(1, "k", LockMode.EXCLUSIVE)
        assert lm.acquire(2, "k", LockMode.SHARED) is False

    def test_reacquire_held_lock(self):
        lm = LockManager()
        lm.acquire(1, "k", LockMode.SHARED)
        assert lm.acquire(1, "k", LockMode.SHARED)

    def test_upgrade_when_sole_holder(self):
        lm = LockManager()
        lm.acquire(1, "k", LockMode.SHARED)
        assert lm.acquire(1, "k", LockMode.EXCLUSIVE)
        assert lm.holders("k")[1] is LockMode.EXCLUSIVE

    def test_release_grants_waiter(self):
        lm = LockManager()
        lm.acquire(1, "k", LockMode.EXCLUSIVE)
        assert lm.acquire(2, "k", LockMode.EXCLUSIVE) is False
        granted = lm.release_all(1)
        assert ("k", 2) in granted
        assert 2 in lm.holders("k")

    def test_fifo_grant_order(self):
        lm = LockManager()
        lm.acquire(1, "k", LockMode.EXCLUSIVE)
        lm.acquire(2, "k", LockMode.EXCLUSIVE)
        lm.acquire(3, "k", LockMode.EXCLUSIVE)
        granted = lm.release_all(1)
        assert granted == [("k", 2)]  # only the head of the queue

    def test_shared_waiters_granted_together(self):
        lm = LockManager()
        lm.acquire(1, "k", LockMode.EXCLUSIVE)
        lm.acquire(2, "k", LockMode.SHARED)
        lm.acquire(3, "k", LockMode.SHARED)
        granted = lm.release_all(1)
        assert {t for _, t in granted} == {2, 3}

    def test_deadlock_detected(self):
        lm = LockManager()
        lm.acquire(1, "a", LockMode.EXCLUSIVE)
        lm.acquire(2, "b", LockMode.EXCLUSIVE)
        lm.acquire(1, "b", LockMode.EXCLUSIVE)  # 1 waits on 2
        with pytest.raises(TransactionAborted) as excinfo:
            lm.acquire(2, "a", LockMode.EXCLUSIVE)  # would close cycle
        assert excinfo.value.reason == "deadlock"

    def test_queue_length(self):
        lm = LockManager()
        lm.acquire(1, "k", LockMode.EXCLUSIVE)
        lm.acquire(2, "k", LockMode.SHARED)
        assert lm.queue_length("k") == 1


class TestMVCC:
    def test_snapshot_isolation_reads(self):
        store = MVCCStore()
        store.begin(1)
        store.write(1, "k", "v1")
        store.commit(1)

        store.begin(2)            # snapshot sees v1
        store.begin(3)
        store.write(3, "k2", "x")
        store.commit(3)
        assert store.read(2, "k") == "v1"
        assert store.read(2, "k2") is None  # committed after 2's snapshot

    def test_read_own_writes(self):
        store = MVCCStore()
        store.begin(1)
        store.write(1, "k", "mine")
        assert store.read(1, "k") == "mine"

    def test_first_updater_wins(self):
        store = MVCCStore()
        store.begin(1)
        store.begin(2)
        store.write(1, "k", "a")
        with pytest.raises(TransactionAborted):
            store.write(2, "k", "b")

    def test_write_after_concurrent_commit_aborts(self):
        store = MVCCStore()
        store.begin(1)
        store.begin(2)
        store.write(1, "k", "a")
        store.commit(1)
        with pytest.raises(TransactionAborted):
            store.write(2, "k", "b")

    def test_abort_discards(self):
        store = MVCCStore()
        store.begin(1)
        store.write(1, "k", "x")
        store.abort(1)
        assert store.committed_value("k") is None
        store.begin(2)
        store.write(2, "k", "y")  # no lingering uncommitted writer
        store.commit(2)
        assert store.committed_value("k") == "y"

    def test_version_history_grows(self):
        store = MVCCStore()
        for i in range(3):
            store.begin(i)
            store.write(i, "k", i)
            store.commit(i)
        assert store.version_count("k") == 3

    def test_read_without_begin(self):
        with pytest.raises(KeyError):
            MVCCStore().read(9, "k")


def _hot_workload(keys=3, reads=2, writes=2):
    """All transactions hammer a tiny key set — guaranteed conflicts."""
    def factory(rng: np.random.Generator) -> Transaction:
        ops = []
        for _ in range(reads):
            ops.append(Operation(int(rng.integers(keys)), is_write=False))
        for _ in range(writes):
            ops.append(Operation(int(rng.integers(keys)), is_write=True))
        return Transaction(txn_id=0, type_id=0, ops=ops)
    return factory


class TestTxnSimulator:
    def test_deterministic_under_seed(self):
        workload = YCSBWorkload(YCSBConfig(records=1000, zipf_theta=0.9))
        a = TxnSimulator(4, TwoPhaseLocking(), workload, seed=5).run(0.005)
        b = TxnSimulator(4, TwoPhaseLocking(), workload, seed=5).run(0.005)
        assert a.committed == b.committed
        assert a.aborted == b.aborted

    def test_throughput_scales_with_threads_uncontended(self):
        workload = YCSBWorkload(YCSBConfig(records=1_000_000,
                                           zipf_theta=0.0))
        one = TxnSimulator(1, OptimisticCC(), workload, seed=1).run(0.01)
        four = TxnSimulator(4, OptimisticCC(), workload, seed=1).run(0.01)
        assert four.throughput > 3 * one.throughput

    def test_hot_keys_cause_conflicts(self):
        sim = TxnSimulator(8, OptimisticCC(), _hot_workload(), seed=1)
        result = sim.run(0.01)
        assert result.aborted > 0

    def test_2pl_serializes_hot_keys_without_validation_aborts(self):
        sim = TxnSimulator(4, TwoPhaseLocking(), _hot_workload(keys=50),
                           seed=1)
        result = sim.run(0.01)
        assert result.committed > 0

    def test_ssi_no_read_validation(self):
        assert SerializableSnapshotIsolation().validate_reads() is False
        assert OptimisticCC().validate_reads() is True

    def test_timeline_windows_cover_duration(self):
        workload = YCSBWorkload(YCSBConfig(records=1000))
        result = TxnSimulator(2, OptimisticCC(), workload,
                              seed=1).run(0.01, window=0.002)
        assert len(result.timeline) == 5
        assert result.timeline[-1][0] == pytest.approx(0.01)

    def test_latency_percentiles_ordered(self):
        workload = YCSBWorkload(YCSBConfig(records=1000, zipf_theta=0.9))
        result = TxnSimulator(4, TwoPhaseLocking(), workload,
                              seed=1).run(0.01)
        assert result.latencies_p99 >= result.latencies_p50 > 0

    def test_abort_rate_consistency(self):
        sim = TxnSimulator(8, OptimisticCC(), _hot_workload(), seed=2)
        result = sim.run(0.01)
        total = result.committed + result.aborted
        assert result.abort_rate == pytest.approx(result.aborted / total)

    def test_policy_abort_action_respected(self):
        class AlwaysAbortFirst(OptimisticCC):
            def choose_action(self, txn, op, key_state, global_state):
                if txn.restarts == 0:
                    return ActionType.ABORT
                return ActionType.OPTIMISTIC

        workload = YCSBWorkload(YCSBConfig(records=1000))
        result = TxnSimulator(2, AlwaysAbortFirst(), workload,
                              seed=1).run(0.005)
        assert result.aborted >= result.committed  # every txn aborts once

    def test_committed_writes_bump_versions(self):
        sim = TxnSimulator(2, TwoPhaseLocking(), _hot_workload(keys=2),
                           seed=1)
        sim.run(0.005)
        assert any(ks.version > 0 for ks in sim.keys.values())

    @given(st.integers(1, 8), st.sampled_from([0.0, 0.9]))
    @settings(max_examples=10, deadline=None)
    def test_no_crash_property(self, threads, theta):
        workload = YCSBWorkload(YCSBConfig(records=500, zipf_theta=theta))
        result = TxnSimulator(threads, SerializableSnapshotIsolation(),
                              workload, seed=0).run(0.003)
        assert result.committed >= 0
