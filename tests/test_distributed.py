"""Sharded distributed execution: exchanges over the modeled network.

The headline invariant (``docs/distributed.md``): at **every** node and
worker count, distributed execution returns bit-identical rows and
bit-identical per-category charged *compute* totals to single-node
execution — scale-out shows up only in the modeled makespan and in the
network categories (``shuffle`` / ``broadcast`` / ``gather`` /
``exchange-msg``), which are exactly zero at one node.

Covered here: NetworkModel unit behavior (pair batching, NIC queueing,
local-transfer elision), the parity sweep across nodes x workers over
hash- and range-partitioned tables (including NaN/NULL shuffle keys),
exchange presence per plan shape, EXPLAIN ANALYZE exchange rendering
with an empty ``(other)`` bucket, per-node metrics gauges, and
``slow_node`` fault injection (targeted skew + seed determinism).
"""

from __future__ import annotations

import os

import pytest

import repro
from repro.common import categories as cat
from repro.common.faults import FaultPlan
from repro.common.simtime import CostModel, NetworkModel, SimClock
from repro.exec.distributed import (DistributedScheduler, block_bytes,
                                    payload_bytes, payload_units)
from repro.exec.executor import Executor
from repro.obs.metrics import MetricsRegistry
from repro.sql import parse
from repro.storage.schema import Column, DataType, TableSchema

FAULT_SEED = int(os.environ.get("FAULT_SEED", "0"))

#: the categories that may (and must only) differ across node counts
NET_CATEGORIES = {cat.SHUFFLE, cat.BROADCAST, cat.GATHER, cat.EXCHANGE_MSG}

DIST_QUERIES = [
    "SELECT count(*) FROM orders",
    "SELECT city, count(*), sum(age) FROM users GROUP BY city ORDER BY city",
    "SELECT item, sum(amount), avg(amount) FROM orders "
    "GROUP BY item ORDER BY item",
    "SELECT name, amount FROM users JOIN orders ON id = uid "
    "WHERE amount > 100 ORDER BY amount DESC, name",
    "SELECT DISTINCT city FROM users ORDER BY city",
    "SELECT name, age FROM users ORDER BY age DESC, name LIMIT 5",
    "SELECT age, count(*) FROM users WHERE age > 25 GROUP BY age ORDER BY age",
]


def _typed(rows):
    return [tuple((type(v), v) for v in row) for row in rows]


def _reprd(rows):
    """NaN-safe comparison form."""
    return [tuple((type(v), repr(v)) for v in row) for row in rows]


def _build_db(shards):
    db = repro.connect(shards=shards)
    db.execute("CREATE TABLE users (id INT UNIQUE, name TEXT, age INT, "
               "city TEXT)")
    db.execute("CREATE TABLE orders (oid INT UNIQUE, uid INT, amount FLOAT, "
               "item TEXT)")
    for i in range(60):
        db.execute(f"INSERT INTO users VALUES ({i}, 'u{i}', {20 + i % 30}, "
                   f"'c{i % 7}')")
    for i in range(200):
        db.execute(f"INSERT INTO orders VALUES ({i}, {i % 60}, "
                   f"{round(1.5 * i, 2)}, 'it{i % 11}')")
    return db


@pytest.fixture(scope="module", params=[1, 4], ids=["shards1", "shards4"])
def dist_db(request):
    return _build_db(request.param)


def _run(db, sql, engine, **kw):
    plan = db.planner.plan_select(parse(sql))
    return Executor(db.catalog, db.clock, engine=engine, **kw).run(plan)


def _compute(stats):
    return {k: v for k, v in stats["charged_by_category"].items()
            if k not in NET_CATEGORIES}


class TestNetworkModel:
    def test_local_and_empty_transfers_ship_nothing(self):
        clock = SimClock()
        stats = NetworkModel(4).exchange(
            cat.SHUFFLE, [(0, 0, 500, 10), (2, 2, 80, 4), (1, 3, 0, 0)],
            clock)
        assert stats["messages"] == 0
        assert stats["rows"] == 0
        assert stats["makespan"] == 0.0
        assert clock.now == 0.0

    def test_pair_batching_and_charges(self):
        clock = SimClock()
        stats = NetworkModel(4).exchange(
            cat.SHUFFLE,
            [(1, 0, 100, 10), (1, 0, 50, 5), (2, 0, 30, 3)], clock)
        # two distinct (src, dst) pairs => two round-trip messages
        assert stats["messages"] == 2
        assert stats["rows"] == 18
        assert stats["bytes"] == 180
        per_byte = CostModel.SERIALIZE_PER_BYTE + CostModel.NET_PER_BYTE
        assert stats["seconds"][cat.EXCHANGE_MSG] == pytest.approx(
            2 * CostModel.NET_ROUND_TRIP)
        assert stats["seconds"][cat.SHUFFLE] == pytest.approx(180 * per_byte)
        breakdown = clock.breakdown()
        assert breakdown[cat.EXCHANGE_MSG] == pytest.approx(
            2 * CostModel.NET_ROUND_TRIP)
        assert breakdown[cat.SHUFFLE] == pytest.approx(180 * per_byte)

    def test_nic_contention_queues_and_extends_makespan(self):
        clock = SimClock()
        # both senders target node 0: the second transfer waits on 0's NIC
        stats = NetworkModel(4).exchange(
            cat.GATHER, [(1, 0, 1000, 10), (2, 0, 1000, 10)], clock)
        per_byte = CostModel.SERIALIZE_PER_BYTE + CostModel.NET_PER_BYTE
        one = CostModel.NET_ROUND_TRIP + 1000 * per_byte
        assert stats["makespan"] == pytest.approx(2 * one)
        per_node = stats["per_node"]
        assert per_node[0]["nic_queued"] == 1
        assert per_node[2]["nic_queued"] == 1
        assert per_node[1]["nic_queued"] == 0
        assert per_node[0]["rows_received"] == 20
        assert per_node[1]["rows_sent"] == 10

    def test_disjoint_pairs_overlap(self):
        clock = SimClock()
        stats = NetworkModel(4).exchange(
            cat.SHUFFLE, [(0, 1, 1000, 10), (2, 3, 1000, 10)], clock)
        per_byte = CostModel.SERIALIZE_PER_BYTE + CostModel.NET_PER_BYTE
        one = CostModel.NET_ROUND_TRIP + 1000 * per_byte
        # different NICs: the two messages ride in parallel
        assert stats["makespan"] == pytest.approx(one)


class TestPayloadSizing:
    def test_block_bytes_by_kind(self):
        from repro.exec.batch import RowBlock
        from repro.exec.expr import RowLayout
        layout = RowLayout([("t", "a"), ("t", "b")])
        block = RowBlock.from_rows(layout, [(1, "x"), (2, "y")])
        assert block_bytes(block) > 0
        empty = RowBlock.from_rows(layout, [])
        assert block_bytes(empty) == 0

    def test_payload_units_nested(self):
        assert payload_units(7) == 1
        assert payload_units([1, 2, 3]) == 3
        assert payload_units({"k": (1, 2)}) == 3  # key + two values
        assert payload_bytes([1, 2]) == 16


class TestDistributedParity:
    @pytest.mark.parametrize("sql", DIST_QUERIES)
    def test_rows_and_compute_identical_across_topologies(self, dist_db, sql):
        base = _run(dist_db, sql, "batch")
        ref_compute = None
        for nodes in (1, 2, 4):
            for workers in (1, 2, 4):
                got = _run(dist_db, sql, "distributed", nodes=nodes,
                           workers=workers)
                assert got.columns == base.columns, sql
                assert _typed(got.rows) == _typed(base.rows), \
                    f"{sql} nodes={nodes} workers={workers}"
                stats = got.extra["distributed"]
                compute = _compute(stats)
                if ref_compute is None:
                    ref_compute = compute
                else:
                    # bit-identical, not approx: the canonical fold order
                    # makes per-category compute independent of topology
                    assert compute == ref_compute, \
                        f"{sql} nodes={nodes} workers={workers}"
                # network charges live on the session clock (they are
                # scale-out overhead, not compute): zero at one node,
                # and total charged = batch total + network overhead
                if nodes == 1:
                    assert stats["exchange_seconds"] == 0.0, sql
                    assert stats["bytes_on_wire"] == 0, sql
                assert got.virtual_seconds - stats["exchange_seconds"] \
                    == pytest.approx(base.virtual_seconds,
                                     rel=1e-6, abs=1e-9), sql

    def test_exchange_presence_by_shape(self):
        db = _build_db(4)
        stats = _run(db, "SELECT item, count(*) FROM orders GROUP BY item",
                     "distributed", nodes=4).extra["distributed"]
        kinds = {e["kind"] for e in stats["exchanges"]}
        assert cat.SHUFFLE in kinds or cat.GATHER in kinds
        stats = _run(db, "SELECT name, amount FROM users JOIN orders "
                         "ON id = uid", "distributed",
                     nodes=4).extra["distributed"]
        kinds = {e["kind"] for e in stats["exchanges"]}
        assert cat.BROADCAST in kinds  # build side ships to every peer
        assert cat.GATHER in kinds

    def test_unsharded_table_runs_as_one_pseudo_shard(self):
        db = _build_db(1)
        got = _run(db, "SELECT city, count(*) FROM users GROUP BY city "
                       "ORDER BY city", "distributed", nodes=4)
        base = _run(db, "SELECT city, count(*) FROM users GROUP BY city "
                        "ORDER BY city", "batch")
        assert _typed(got.rows) == _typed(base.rows)
        stats = got.extra["distributed"]
        # one shard lands on node 0; no scan fan-out, so no shuffle
        assert stats["rows_shuffled"] == 0

    def test_range_partition_parity(self):
        db = repro.connect()
        schema = TableSchema("events", [Column("ts", DataType.INT),
                                        Column("val", DataType.FLOAT)])
        table = db.catalog.create_table(schema, partition="ts",
                                        partition_kind="range",
                                        boundaries=[100, 200, 300],
                                        shards=4)
        for i in range(400):
            table.insert((i, round(i * 0.5, 2)))
        sql = "SELECT ts, count(*), sum(val) FROM events " \
              "GROUP BY ts ORDER BY ts"
        base = _run(db, sql, "batch")
        for nodes in (1, 2, 4):
            got = _run(db, sql, "distributed", nodes=nodes, workers=2)
            assert _typed(got.rows) == _typed(base.rows)

    def test_nan_and_null_shuffle_keys(self):
        """NaN and NULL group keys survive the hash repartition: the
        stable-hash router and the partition merge keep them distinct
        and deterministic at every node count."""
        db = repro.connect(shards=4)
        db.execute("CREATE TABLE g (k FLOAT, v FLOAT)")
        table = db.catalog.table("g")
        nan = float("nan")
        values = [1.0, nan, None, -2.5, 0.0, nan, None, 7.25]
        for i in range(200):
            table.insert((values[i % len(values)], float(i)))
        sql = "SELECT k, count(*), sum(v) FROM g GROUP BY k"
        base = _run(db, sql, "batch")
        for nodes in (1, 2, 4):
            got = _run(db, sql, "distributed", nodes=nodes, workers=2)
            assert _reprd(got.rows) == _reprd(base.rows), f"nodes={nodes}"


class TestObservability:
    def test_explain_analyze_renders_exchanges(self):
        db = repro.connect(shards=4, engine="distributed", nodes=4)
        db.execute("CREATE TABLE t (k INT, v FLOAT)")
        for i in range(300):
            db.execute(f"INSERT INTO t VALUES ({i % 40}, {i}.5)")
        rs = db.execute("EXPLAIN ANALYZE SELECT k, sum(v) FROM t "
                        "GROUP BY k ORDER BY k")
        text = "\n".join(r[0] for r in rs.rows)
        assert "distributed: nodes=4" in text
        assert "exchange" in text
        assert "rows=" in text and "bytes=" in text
        structured = rs.extra["explain"]
        # reconciliation: network charges ran under operator spans, so
        # nothing leaks into the (other) bucket
        assert structured["other"] == {}
        assert structured["distributed"]["nodes"] == 4
        assert any(n["exchanges"] for n in structured["nodes"])

    def test_per_node_metrics_gauges(self):
        db = repro.connect(shards=4, engine="distributed", nodes=4)
        db.execute("CREATE TABLE t (k INT, v FLOAT)")
        for i in range(200):
            db.execute(f"INSERT INTO t VALUES ({i % 20}, {i}.0)")
        db.execute("SELECT k, sum(v) FROM t GROUP BY k")
        gauges = db.metrics()["gauges"]
        for node in range(4):
            assert f"dist.node.makespan{{node={node}}}" in gauges
            assert f"dist.node.rows_shuffled{{node={node}}}" in gauges
            assert f"dist.node.queue_depth{{node={node}}}" in gauges
        counters = db.metrics()["counters"]
        assert counters.get("dist.exchanges", 0) >= 1

    def test_scheduler_stats_shape(self):
        db = _build_db(4)
        stats = _run(db, "SELECT item, count(*) FROM orders GROUP BY item",
                     "distributed", nodes=4, workers=2).extra["distributed"]
        assert stats["nodes"] == 4
        assert stats["workers"] == 2
        assert len(stats["per_node"]) == 4
        assert stats["virtual_makespan"] <= stats["virtual_charged"]
        assert stats["modeled_speedup"] >= 1.0
        for entry in stats["per_node"]:
            assert set(entry) >= {"node", "tasks", "io_seconds",
                                  "compute_seconds", "busy_seconds",
                                  "rows_sent", "bytes_sent", "nic_queued"}


class TestSlowNode:
    SQL = "SELECT item, count(*), sum(amount) FROM orders " \
          "GROUP BY item ORDER BY item"

    def test_targeted_slow_node_skews_makespan_not_results(self):
        db = _build_db(4)
        base = _run(db, self.SQL, "distributed", nodes=4, workers=2)
        slow = FaultPlan(FAULT_SEED).arm("slow_node", rate=1.0,
                                         target="node1", latency=5e-3)
        got = _run(db, self.SQL, "distributed", nodes=4, workers=2,
                   faults=slow)
        assert _typed(got.rows) == _typed(base.rows)
        b, g = (base.extra["distributed"], got.extra["distributed"])
        assert g["virtual_makespan"] > b["virtual_makespan"]
        # only node 1's busy time inflates; compute accounting still
        # tracks the injected latency as fault-slow, not as real work
        assert g["per_node"][1]["busy_seconds"] \
            > b["per_node"][1]["busy_seconds"]
        for node in (0, 2, 3):
            assert g["per_node"][node]["busy_seconds"] == pytest.approx(
                b["per_node"][node]["busy_seconds"])
        assert _compute(g) != _compute(b)  # FAULT_SLOW shows up
        clean_g = {k: v for k, v in _compute(g).items()
                   if k != cat.FAULT_SLOW}
        assert clean_g == _compute(b)

    def test_seeded_slow_node_rerolls_deterministically(self):
        """Same seed => identical injection sites and identical stats;
        rows stay bit-identical under any seed (CI sweeps FAULT_SEED)."""
        db = _build_db(4)
        base = _run(db, self.SQL, "distributed", nodes=4, workers=2)

        def run_chaos():
            plan = FaultPlan(FAULT_SEED).arm("slow_node", rate=0.3,
                                             latency=1e-3)
            return _run(db, self.SQL, "distributed", nodes=4, workers=2,
                        faults=plan)

        first, second = run_chaos(), run_chaos()
        assert _typed(first.rows) == _typed(base.rows)
        assert _typed(second.rows) == _typed(base.rows)
        # shard-clock folds are bit-reproducible; the makespan embeds a
        # shared-clock delta, so successive runs at different clock
        # offsets may differ in the last ulp
        assert first.extra["distributed"]["charged_by_category"] \
            == second.extra["distributed"]["charged_by_category"]
        assert first.extra["distributed"]["virtual_makespan"] \
            == pytest.approx(
                second.extra["distributed"]["virtual_makespan"],
                rel=1e-12)

    def test_chaos_plan_keeps_parity(self):
        """The everything-at-once chaos configuration with slow_node in
        the mix: results stay bit-identical to the fault-free batch run."""
        db = _build_db(4)
        for sql in DIST_QUERIES:
            base = _run(db, sql, "batch")
            chaos = FaultPlan.chaos(FAULT_SEED, rate=0.2,
                                    kinds=("slow_node",), latency=2e-3)
            got = _run(db, sql, "distributed", nodes=4, workers=2,
                       faults=chaos)
            assert _typed(got.rows) == _typed(base.rows), sql


class TestSchedulerValidation:
    def test_rejects_bad_topology(self):
        clock = SimClock()
        with pytest.raises(ValueError):
            DistributedScheduler(clock, nodes=0)
        with pytest.raises(ValueError):
            DistributedScheduler(clock, nodes=2, workers=0)
        with pytest.raises(ValueError):
            Executor(None, clock, nodes=0)  # type: ignore[arg-type]

    def test_registry_counts_tasks(self):
        db = _build_db(4)
        registry = MetricsRegistry()
        plan = db.planner.plan_select(
            parse("SELECT count(*) FROM orders"))
        Executor(db.catalog, db.clock, engine="distributed", nodes=2,
                 registry=registry).run(plan)
        snap = registry.snapshot()
        assert snap["counters"].get("exec.tasks", 0) >= 1
