"""The invariant analyzer suite: determinism lint, charge-category
registry, parallel-hook race analysis, and the runtime lockset
sanitizer.

Three kinds of coverage:

* **Seeded true positives** — each rule fires on a minimal snippet (and
  on the acceptance-criteria injections into the real
  ``exec/operators.py`` source).
* **False-positive guards** — known-clean idioms (seeded RNG, sorted
  set iteration, morsel-local writes, locked counter updates) produce
  nothing.
* **The tree itself** — ``src/repro`` analyzes to zero unsuppressed
  findings, which is also what the blocking CI job asserts.
"""

from __future__ import annotations

import re
import threading
from pathlib import Path

import pytest

from repro.analysis import (
    ALL_PASSES,
    ChargeCategoryPass,
    DeterminismPass,
    load_module,
    load_tree,
    run_passes,
    unsuppressed,
)
from repro.analysis.races import EXPECTED_WORKER_HOOKS, RaceAnalysisPass
from repro.analysis.sanitizer import (
    LocksetSanitizer,
    SanitizerViolation,
)
from repro.common import categories

ROOT = Path(__file__).resolve().parent.parent
SRC = ROOT / "src" / "repro"


def findings_for(path: str, text: str, passes=None):
    mod = load_module(path, text)
    lineup = [p() for p in (passes or ALL_PASSES)]
    return unsuppressed(run_passes([mod], lineup))


def rules_of(findings):
    return [f.rule for f in findings]


# -- determinism lint --------------------------------------------------------


class TestDeterminismPass:
    def test_stdlib_global_rng_flagged(self):
        found = findings_for("repro/x.py",
                             "import random\nv = random.random()\n",
                             [DeterminismPass])
        assert rules_of(found) == ["unseeded-rng"]

    def test_unseeded_default_rng_flagged(self):
        src = "import numpy as np\nrng = np.random.default_rng()\n"
        assert rules_of(findings_for("repro/x.py", src,
                                     [DeterminismPass])) == ["unseeded-rng"]

    def test_none_seed_flagged_and_explicit_seed_clean(self):
        src = ("import numpy as np\n"
               "a = np.random.default_rng(None)\n"
               "b = np.random.default_rng(7)\n"
               "c = np.random.default_rng(seed=3)\n")
        found = findings_for("repro/x.py", src, [DeterminismPass])
        assert [(f.rule, f.line) for f in found] == [("unseeded-rng", 2)]

    def test_numpy_legacy_global_flagged(self):
        src = "import numpy as np\nv = np.random.rand(3)\n"
        assert rules_of(findings_for("repro/x.py", src,
                                     [DeterminismPass])) == ["unseeded-rng"]

    def test_wallclock_flagged(self):
        src = "import time\nt = time.time()\n"
        assert rules_of(findings_for("repro/x.py", src,
                                     [DeterminismPass])) == ["wallclock"]

    def test_wallclock_through_alias(self):
        src = "from time import perf_counter as pc\nt = pc()\n"
        assert rules_of(findings_for("repro/x.py", src,
                                     [DeterminismPass])) == ["wallclock"]

    def test_id_ordering_flagged(self):
        src = "def f(xs):\n    return sorted(xs, key=id)\n"
        assert rules_of(findings_for("repro/x.py", src,
                                     [DeterminismPass])) == ["id-ordering"]

    def test_set_iteration_into_output_flagged(self):
        src = ("def f(xs):\n"
               "    out = []\n"
               "    for x in set(xs):\n"
               "        out.append(x)\n"
               "    return out\n")
        assert rules_of(findings_for("repro/x.py", src,
                                     [DeterminismPass])) == ["set-iteration"]

    def test_list_of_set_flagged(self):
        src = ("def f(xs):\n"
               "    s = set(xs)\n"
               "    return list(s)\n")
        assert rules_of(findings_for("repro/x.py", src,
                                     [DeterminismPass])) == ["set-iteration"]

    def test_sorted_set_and_membership_clean(self):
        src = ("def f(xs, y):\n"
               "    s = set(xs)\n"
               "    if y in s:\n"
               "        return sorted(s)\n"
               "    total = 0\n"
               "    for x in s:\n"
               "        total += x\n"
               "    return total\n")
        assert findings_for("repro/x.py", src, [DeterminismPass]) == []

    def test_seeded_constructs_clean(self):
        src = ("import random\n"
               "import numpy as np\n"
               "r = random.Random(7)\n"
               "g = np.random.default_rng(0)\n")
        assert findings_for("repro/x.py", src, [DeterminismPass]) == []

    def test_pragma_with_reason_suppresses(self):
        src = ("import time\n"
               "t = time.time()  # repro: nondeterministic-ok "
               "wall time reported to humans only\n")
        assert findings_for("repro/x.py", src, [DeterminismPass]) == []

    def test_bare_pragma_is_itself_a_finding(self):
        src = ("import time\n"
               "t = time.time()  # repro: nondeterministic-ok\n")
        found = findings_for("repro/x.py", src, [DeterminismPass])
        assert sorted(rules_of(found)) == ["bare-pragma", "wallclock"]

    def test_rng_module_allowlisted(self):
        src = "import numpy as np\nrng = np.random.default_rng()\n"
        mod = load_module("repro/common/rng.py", src)
        assert unsuppressed(run_passes([mod], [DeterminismPass()])) == []


# -- charge-category registry ------------------------------------------------


class TestChargeCategoryPass:
    def test_registered_literal_clean(self):
        src = "def f(clock):\n    clock.advance(1.0, \"scan\")\n"
        assert findings_for("repro/x.py", src, [ChargeCategoryPass]) == []

    def test_misspelled_literal_flagged(self):
        src = "def f(clock):\n    clock.advance(1.0, \"sacn\")\n"
        found = findings_for("repro/x.py", src, [ChargeCategoryPass])
        assert rules_of(found) == ["unknown-category"]

    def test_registry_constant_clean(self):
        src = ("from repro.common import categories as cat\n"
               "def f(clock):\n"
               "    clock.advance(1.0, cat.SCAN)\n"
               "    clock.advance_batch(0.1, 5, category=cat.FILTER)\n")
        assert findings_for("repro/x.py", src, [ChargeCategoryPass]) == []

    def test_unresolved_constant_flagged(self):
        src = ("from repro.common import categories as cat\n"
               "def f(clock):\n"
               "    clock.advance(1.0, cat.NO_SUCH_THING)\n")
        found = findings_for("repro/x.py", src, [ChargeCategoryPass])
        assert rules_of(found) == ["unresolved-category"]

    def test_default_category_clean(self):
        assert findings_for("repro/x.py",
                            "def f(clock):\n    clock.advance(1.0)\n",
                            [ChargeCategoryPass]) == []

    def test_dynamic_category_warned(self):
        src = "def f(clock, which):\n    clock.advance(1.0, which)\n"
        found = findings_for("repro/x.py", src, [ChargeCategoryPass])
        assert rules_of(found) == ["dynamic-category"]

    def test_advance_charges_literal_tuples_checked(self):
        src = ("def f(clock, n):\n"
               "    clock.advance_charges([(0.1, n, \"scan\"),"
               " (0.2, n, \"flter\")])\n")
        found = findings_for("repro/x.py", src, [ChargeCategoryPass])
        assert rules_of(found) == ["unknown-category"]

    def test_absorb_category_checked(self):
        src = "def f(clock):\n    clock.absorb(1.0, \"nope\")\n"
        found = findings_for("repro/x.py", src, [ChargeCategoryPass])
        assert rules_of(found) == ["unknown-category"]

    def test_bare_clock_construction_flagged(self):
        """True positive: a private ``SimClock()`` outside the clock
        module hides its charges from any attached tracer."""
        src = ("from repro.common.simtime import SimClock\n"
               "def f():\n"
               "    clock = SimClock()\n"
               "    clock.advance(1.0, \"scan\")\n"
               "    return clock\n")
        found = findings_for("repro/x.py", src, [ChargeCategoryPass])
        assert rules_of(found) == ["untraced-clock"]

    def test_guarded_default_fallback_clean(self):
        """False-positive guard: the standalone default
        ``clock if clock is not None else SimClock()`` is structurally
        exempt — it only fires when no session clock exists."""
        src = ("from repro.common.simtime import SimClock\n"
               "def f(clock=None):\n"
               "    clock = clock if clock is not None else SimClock()\n"
               "    clock.advance(1.0, \"scan\")\n"
               "    return clock\n")
        assert findings_for("repro/x.py", src, [ChargeCategoryPass]) == []

    def test_untraced_clock_pragma_suppresses(self):
        src = ("from repro.common.simtime import SimClock\n"
               "def f():\n"
               "    return SimClock()"
               "  # repro: untraced-clock-ok isolated figure harness\n")
        assert findings_for("repro/x.py", src, [ChargeCategoryPass]) == []

    def test_every_literal_in_tree_is_registered(self):
        """Acceptance criterion: all charge-category literals across
        src/repro resolve to the central registry."""
        modules = load_tree(SRC, base=ROOT / "src")
        found = unsuppressed(run_passes(modules, [ChargeCategoryPass()]))
        assert found == [], "\n".join(f.location() + " " + f.message
                                      for f in found)

    def test_registry_is_consistent(self):
        for name, desc in categories.REGISTRY.items():
            assert categories.is_registered(name)
            assert isinstance(desc, str) and desc


# -- race analysis -----------------------------------------------------------


OPERATORS_SRC = (SRC / "exec" / "operators.py").read_text(encoding="utf-8")
PARALLEL_SRC = (SRC / "exec" / "parallel.py").read_text(encoding="utf-8")
PIPELINE_SRC = (SRC / "exec" / "pipeline.py").read_text(encoding="utf-8")


def race_findings(operators=OPERATORS_SRC, parallel=PARALLEL_SRC,
                  pipeline=PIPELINE_SRC):
    modules = [
        load_module("repro/exec/operators.py", operators),
        load_module("repro/exec/parallel.py", parallel),
        load_module("repro/exec/pipeline.py", pipeline),
    ]
    return unsuppressed(run_passes(modules, [RaceAnalysisPass()]))


class TestRaceAnalysisPass:
    def test_real_tree_clean(self):
        assert race_findings() == []

    def test_unlocked_hook_write_flagged(self):
        """Acceptance criterion: an unlocked shared-attribute write in a
        parallel hook produces a finding."""
        match = re.search(r"(    def partial_block\(self[^\n]*\n)",
                          OPERATORS_SRC)
        assert match is not None
        injected = (OPERATORS_SRC[:match.end()]
                    + "        self._blocks_seen = 1\n"
                    + OPERATORS_SRC[match.end():])
        found = race_findings(operators=injected)
        assert any(f.rule == "unlocked-shared-write"
                   and "partial_block" in f.message for f in found)

    def test_unlocked_mutating_call_flagged(self):
        # the signature may wrap: consume to the colon ending it
        match = re.search(r"    def sort_block\(self.*?:\n",
                          OPERATORS_SRC, re.S)
        assert match is not None
        injected = (OPERATORS_SRC[:match.end()]
                    + "        self._runs.append(1)\n"
                    + OPERATORS_SRC[match.end():])
        found = race_findings(operators=injected)
        assert any(f.rule == "unlocked-shared-write"
                   and "sort_block" in f.message for f in found)

    def test_unguarded_scheduler_append_flagged(self):
        """Removing the lock around the worker loop's error collection
        must be caught (the very fix this pass motivated)."""
        broken = PARALLEL_SRC.replace(
            "                    with self._counter_lock:\n"
            "                        errors.append((i, exc))\n",
            "                    errors.append((i, exc))\n")
        assert broken != PARALLEL_SRC
        found = race_findings(parallel=broken)
        assert any(f.rule == "unlocked-shared-write"
                   and "captured 'errors'" in f.message for f in found)

    def test_dispatch_drift_detected(self):
        """A new hook dispatched via self._map without a matching
        EXPECTED_WORKER_HOOKS entry is a finding."""
        marker = ("        runs = self._map(blocks, "
                  "self._op_task(op, op.sort_block))\n")
        assert marker in PARALLEL_SRC
        drifted = PARALLEL_SRC.replace(
            marker, marker
            + "        self._map(blocks, op.shiny_new_hook)\n")
        found = race_findings(parallel=drifted)
        assert any(f.rule == "dispatch-drift"
                   and "shiny_new_hook" in f.message for f in found)

    def test_dispatch_seen_through_tracing_shim(self):
        """The derived hook set must see through the ``_op_task``
        wrapper: dropping a shimmed hook from EXPECTED_WORKER_HOOKS
        would drift, so the shimmed form itself must derive cleanly."""
        assert "sort_block" in EXPECTED_WORKER_HOOKS
        drifted = PARALLEL_SRC.replace(
            "        runs = self._map(blocks, "
            "self._op_task(op, op.sort_block))\n",
            "        runs = self._map(blocks, "
            "self._op_task(op, op.shim_only_hook))\n")
        assert drifted != PARALLEL_SRC
        found = race_findings(parallel=drifted)
        assert any(f.rule == "dispatch-drift"
                   and "shim_only_hook" in f.message for f in found)

    def test_expected_hooks_match_scheduler_contract(self):
        # the serial-lane hooks must never appear in the worker set
        serial_only = {"merge_build", "merge_runs", "finish_partials",
                       "finish_partitions", "distinct_block", "limit_block"}
        assert not (EXPECTED_WORKER_HOOKS & serial_only)

    def test_morsel_local_writes_clean(self):
        """Index-local stores and local mutations — the scheduler's own
        idiom — must not be flagged."""
        src = ("import threading\n"
               "class MorselScheduler:\n"
               "    def _go(self, items):\n"
               "        results = [None] * len(items)\n"
               "        def work():\n"
               "            for i in range(len(items)):\n"
               "                local = []\n"
               "                local.append(i)\n"
               "                results[i] = local\n"
               "        t = threading.Thread(target=work)\n"
               "        t.start()\n")
        mod = load_module("repro/exec/parallel.py", src)
        assert unsuppressed(run_passes([mod], [RaceAnalysisPass()])) == []


# -- acceptance-criteria injections against the full lineup ------------------


class TestInjections:
    def test_unseeded_random_in_operators(self):
        injected = (OPERATORS_SRC
                    + "\n\nimport random\n\n"
                      "def _jitter():\n    return random.random()\n")
        found = findings_for("repro/exec/operators.py", injected)
        assert any(f.rule == "unseeded-rng" for f in found)

    def test_misspelled_category_in_operators(self):
        injected = OPERATORS_SRC.replace("cat.SCAN", '"sacn"', 1)
        assert injected != OPERATORS_SRC
        found = findings_for("repro/exec/operators.py", injected)
        assert any(f.rule == "unknown-category" for f in found)


# -- whole-tree gate ---------------------------------------------------------


def test_src_tree_has_no_unsuppressed_findings():
    """The blocking CI gate, asserted in tier-1 too: the tree analyzes
    clean under every pass."""
    modules = load_tree(SRC, base=ROOT / "src")
    found = unsuppressed(run_passes(modules,
                                    [p() for p in ALL_PASSES]))
    assert found == [], "\n".join(
        f"{f.location()}: [{f.rule}] {f.message}" for f in found)


# -- runtime lockset sanitizer ----------------------------------------------


class _SharedThing:
    pass


class TestSanitizer:
    def test_unlocked_worker_write_raises(self):
        san = LocksetSanitizer()
        obj = _SharedThing()
        san.instrument(obj)

        def worker():
            obj.counter = 1

        t = threading.Thread(target=worker, name="morsel-worker-0")
        t.start()
        t.join()
        with pytest.raises(SanitizerViolation):
            san.check()

    def test_locked_worker_write_clean(self):
        san = LocksetSanitizer()
        obj = _SharedThing()
        san.instrument(obj)
        lock = san.lock(name="guard")

        def worker():
            with lock:
                obj.counter = 2

        t = threading.Thread(target=worker, name="morsel-worker-0")
        t.start()
        t.join()
        san.check()  # no raise
        assert obj.counter == 2

    def test_coordinator_writes_recorded_not_violations(self):
        san = LocksetSanitizer()
        obj = _SharedThing()
        san.instrument(obj)
        obj.value = 3
        assert [r.attribute for r in san.records()] == ["_SharedThing.value"]
        assert san.violations() == []
        san.check()

    def test_instrument_idempotent_and_type_preserving(self):
        san = LocksetSanitizer()
        obj = _SharedThing()
        san.instrument(obj)
        first = type(obj)
        san.instrument(obj)
        assert type(obj) is first
        assert isinstance(obj, _SharedThing)
        assert type(obj).__name__ == "_SharedThing"

    def test_check_clears_records(self):
        san = LocksetSanitizer()
        obj = _SharedThing()
        san.instrument(obj)
        obj.x = 1
        san.check()
        assert san.records() == []

    @pytest.mark.parametrize("workers", [1, 2, 4])
    def test_scheduler_parity_run_clean_under_sanitizer(
            self, workers, monkeypatch):
        """Full engine run with REPRO_SANITIZE=1: the morsel scheduler
        instruments the operator tree and itself, and finishes with no
        violations at every worker count the parity sweep uses."""
        monkeypatch.setenv("REPRO_SANITIZE", "1")
        import repro
        from repro.analysis.sanitizer import sanitizer
        from repro.exec.executor import Executor
        from repro.sql import parse
        sanitizer.reset()
        db = repro.connect()
        db.execute("CREATE TABLE t (id INT UNIQUE, grp TEXT, v FLOAT)")
        heap = db.catalog.table("t")
        for i in range(200):
            heap.insert((i, ["a", "b", "c"][i % 3], float(i) * 0.5))
        db.execute("ANALYZE")
        sql = ("SELECT grp, count(*), sum(v) FROM t WHERE v > 5.0 "
               "GROUP BY grp ORDER BY grp")

        def run(**kwargs):
            plan = db.planner.plan_select(parse(sql))
            return Executor(db.catalog, db.clock, **kwargs).run(plan)

        serial = run(engine="batch").rows
        parallel = run(engine="parallel", workers=workers).rows
        assert parallel == serial  # sanitizer raised nothing, parity holds
