"""Parallel sort and partitioned aggregation: the retired serial-lane
holdouts.

Covers the total-order sort key (NaN bucketed deterministically between
numbers and strings), three-way engine parity for ORDER BY over
NaN/NULL/mixed-type keys and multi-key DESC sorts, wide GROUP BY past the
mask-partition cutoff with NaN group keys at several worker counts, the
sort-cost charge fix for empty/single-row inputs, and the mid-flight
virtual-time budget enforcement at parallel phase boundaries.
"""

from __future__ import annotations

import pytest

import repro
from repro.common.simtime import BudgetExceeded, CostModel, SimClock
from repro.exec import operators as ops
from repro.exec.executor import Executor
from repro.exec.measure import measure_plan_latency
from repro.exec.operators import _Descending, _sort_key
from repro.sql import parse

WORKER_SWEEP = (1, 2, 4, 8)


def _typed(rows):
    return [tuple((type(v), v) for v in row) for row in rows]


def _nan_safe(rows):
    """Type+repr comparison key: NaN == NaN under repr, 1 != 1.0 by type."""
    return [tuple((type(v), repr(v)) for v in row) for row in rows]


def _run(db, sql, **kwargs):
    plan = db.planner.plan_select(parse(sql))
    return Executor(db.catalog, db.clock, **kwargs).run(plan)


def _three_way(db, sql, workers=4, morsel_rows=16):
    """Run sql through row/batch/parallel; assert rows, types, order, and
    charged virtual time agree; return the row-engine result."""
    plan = db.planner.plan_select(parse(sql))
    # warm the buffer pool so the reference run doesn't pay cold page
    # misses the later engines get as hits (fixtures skip ANALYZE because
    # histogram stats reject NaN)
    Executor(db.catalog, db.clock, engine="batch").run(plan)
    row = Executor(db.catalog, db.clock, engine="row").run(plan)
    for engine in (Executor(db.catalog, db.clock, engine="batch"),
                   Executor(db.catalog, db.clock, engine="parallel",
                            workers=workers, morsel_rows=morsel_rows)):
        got = engine.run(plan)
        assert _nan_safe(got.rows) == _nan_safe(row.rows)
        assert got.virtual_seconds == pytest.approx(
            row.virtual_seconds, rel=1e-6, abs=1e-9)
    return row


# -- total-order sort key ----------------------------------------------------

def test_sort_key_is_total_order():
    """NaN gets the (0.5, '') bucket between numbers and strings, so any
    permutation of a mixed value set sorts to the same sequence."""
    nan = float("nan")
    values = [3, None, nan, "b", 1.5, None, nan, "a", -2, True]
    keys = [_sort_key(v) for v in values]
    # every pair of keys is comparable without error
    for a in keys:
        for b in keys:
            assert (a < b) or (b < a) or (a == b)
    ranks = [_sort_key(v)[0] for v in [-2, nan, "a", None]]
    assert ranks == sorted(ranks)  # numbers < NaN < strings < NULL


def test_sort_key_permutation_invariant():
    import itertools
    nan = float("nan")
    base = [2.0, nan, None, "x", 1]
    reference = sorted(base, key=_sort_key)
    for perm in itertools.permutations(base):
        got = sorted(perm, key=_sort_key)
        assert [repr(v) for v in got] == [repr(v) for v in reference]


def test_descending_wrapper_inverts():
    a, b = _Descending((0, 1)), _Descending((0, 2))
    assert b < a and not (a < b)
    assert _Descending((1, "x")) == _Descending((1, "x"))


# -- ORDER BY parity: NaN / NULL / mixed-type keys ---------------------------

@pytest.fixture()
def messy_db():
    """FLOAT sort column containing NaN (via the heap API), NULLs, and
    duplicates; a TEXT column with NULLs for multi-key/mixed tests."""
    db = repro.connect()
    db.execute("CREATE TABLE m (id INT, k FLOAT, s TEXT)")
    heap = db.catalog.table("m")
    nan = float("nan")
    for i in range(80):
        k = nan if i % 7 == 0 else (None if i % 11 == 0 else (i % 13) * 0.5)
        s = None if i % 5 == 0 else f"s{i % 9}"
        heap.insert((i, k, s))
    return db


@pytest.mark.parametrize("workers", WORKER_SWEEP)
def test_order_by_nan_null_parity(messy_db, workers):
    _three_way(messy_db, "SELECT id, k FROM m ORDER BY k",
               workers=workers)
    _three_way(messy_db, "SELECT id, k FROM m ORDER BY k DESC",
               workers=workers)


@pytest.mark.parametrize("workers", WORKER_SWEEP)
def test_order_by_multi_key_desc_parity(messy_db, workers):
    _three_way(messy_db, "SELECT id, k, s FROM m ORDER BY s DESC, k DESC",
               workers=workers)
    _three_way(messy_db,
               "SELECT id, k, s FROM m ORDER BY k DESC, s, id DESC",
               workers=workers)


@pytest.mark.parametrize("workers", WORKER_SWEEP)
def test_order_by_mixed_type_key_parity(messy_db, workers):
    """coalesce(s, id) yields str-or-int keys; coalesce(s, k) adds NaN to
    the mix — the full rank ladder numbers < NaN < strings < NULL."""
    _three_way(messy_db,
               "SELECT id, coalesce(s, id) AS mk FROM m ORDER BY mk, id",
               workers=workers)
    _three_way(messy_db,
               "SELECT id, coalesce(s, k) AS mk FROM m ORDER BY mk DESC, id",
               workers=workers)


def test_order_by_nan_deterministic_across_worker_counts(messy_db):
    """The k-way merge must yield one canonical order for every worker
    count and morsel size, even with all-NaN key ties."""
    reference = None
    for workers in WORKER_SWEEP:
        for morsel_rows in (4, 16, 64):
            got = _run(messy_db, "SELECT id, k FROM m ORDER BY k",
                       engine="parallel", workers=workers,
                       morsel_rows=morsel_rows)
            if reference is None:
                reference = _nan_safe(got.rows)
            assert _nan_safe(got.rows) == reference


# -- sort runs morsel-parallel now -------------------------------------------

def test_sort_heavy_plan_gets_modeled_speedup():
    """ORDER BY-heavy plans no longer ride the serial lane: the run sorts
    parallelize and only the k-way merge remainder stays serial."""
    db = repro.connect()
    db.execute("CREATE TABLE t (id INT, v FLOAT)")
    heap = db.catalog.table("t")
    for i in range(20_000):
        heap.insert((i, float((i * 37) % 9973)))
    db.execute("ANALYZE")
    stats = _run(db, "SELECT id, v FROM t ORDER BY v", engine="parallel",
                 workers=4).extra["parallel"]
    assert stats["modeled_speedup"] >= 2.0
    assert stats["parallel_phases"] >= 2  # scan pipeline + run sorts


def test_sort_charge_split_matches_serial_total(messy_db):
    """Run charges + merge remainder must equal the serial engines' single
    n*log2(n) charge (the parity invariant), asserted on the 'sort'
    category specifically."""
    sql = "SELECT id, k FROM m ORDER BY k"
    plan = messy_db.planner.plan_select(parse(sql))
    before = messy_db.clock.category_total("sort")
    Executor(messy_db.catalog, messy_db.clock, engine="batch").run(plan)
    serial_sort = messy_db.clock.category_total("sort") - before
    before = messy_db.clock.category_total("sort")
    Executor(messy_db.catalog, messy_db.clock, engine="parallel",
             workers=4, morsel_rows=8).run(plan)
    parallel_sort = messy_db.clock.category_total("sort") - before
    assert parallel_sort == pytest.approx(serial_sort, rel=1e-9)


@pytest.mark.parametrize("rows", [0, 1])
@pytest.mark.parametrize("engine", ["row", "batch", "parallel"])
def test_trivial_sort_charges_zero(rows, engine):
    """len(rows) <= 1 sorts charge no virtual time on any path."""
    db = repro.connect()
    db.execute("CREATE TABLE s (id INT, v FLOAT)")
    heap = db.catalog.table("s")
    for i in range(rows):
        heap.insert((i, float(i)))
    result = _run(db, "SELECT id, v FROM s ORDER BY v", engine=engine)
    assert len(result.rows) == rows
    assert db.clock.category_total("sort") == 0.0


# -- partitioned aggregation -------------------------------------------------

@pytest.fixture()
def wide_db():
    """Near-unique float group keys (well past _MASK_PARTITION_MAX_KEYS per
    morsel) with NaN keys sprinkled in via the heap API."""
    db = repro.connect()
    db.execute("CREATE TABLE w (k FLOAT, v FLOAT)")
    heap = db.catalog.table("w")
    nan = float("nan")
    for i in range(600):
        key = nan if i % 97 == 0 else float(i % 150) * 1.5
        heap.insert((key, float(i) * 0.25))
    return db


@pytest.mark.parametrize("workers", WORKER_SWEEP)
def test_wide_group_by_nan_keys_parity(wide_db, workers):
    """GROUP BY past the mask-partition cutoff with NaN keys: rows, group
    order, float sums, and charged time identical three ways."""
    sql = "SELECT k, count(*), sum(v), avg(v) FROM w GROUP BY k"
    plan = wide_db.planner.plan_select(parse(sql))
    Executor(wide_db.catalog, wide_db.clock, engine="batch").run(plan)
    row = Executor(wide_db.catalog, wide_db.clock, engine="row").run(plan)
    assert len(row.rows) > ops.AggregateOp.PARTITION_MIN_KEYS
    for engine in (Executor(wide_db.catalog, wide_db.clock, engine="batch"),
                   Executor(wide_db.catalog, wide_db.clock,
                            engine="parallel", workers=workers,
                            morsel_rows=64)):
        got = engine.run(plan)
        assert _nan_safe(got.rows) == _nan_safe(row.rows)
        assert got.virtual_seconds == pytest.approx(
            row.virtual_seconds, rel=1e-6, abs=1e-9)


def test_wide_group_by_uses_partitioned_merge(wide_db, monkeypatch):
    """The partitioned path (finish_partitions) must actually engage past
    the cutoff with several workers, and stay out of the narrow case."""
    calls = []
    orig = ops.AggregateOp.finish_partitions

    def spy(self, partitions):
        calls.append(len(partitions))
        return orig(self, partitions)

    monkeypatch.setattr(ops.AggregateOp, "finish_partitions", spy)
    _run(wide_db, "SELECT k, count(*) FROM w GROUP BY k",
         engine="parallel", workers=4, morsel_rows=64)
    assert calls == [4]  # one merge task per worker partition
    calls.clear()
    # narrow GROUP BY (3 groups) keeps the plain morsel-order merge
    db = repro.connect()
    db.execute("CREATE TABLE n (g TEXT, v INT)")
    heap = db.catalog.table("n")
    for i in range(200):
        heap.insert((["a", "b", "c"][i % 3], i))
    _run(db, "SELECT g, sum(v) FROM n GROUP BY g", engine="parallel",
         workers=4, morsel_rows=16)
    assert calls == []


def test_partitioned_merge_deterministic_across_workers(wide_db):
    sql = "SELECT k, sum(v), count(*) FROM w GROUP BY k"
    reference = None
    for workers in WORKER_SWEEP:
        got = _run(wide_db, sql, engine="parallel", workers=workers,
                   morsel_rows=32)
        snapshot = [(repr(k), s, c) for k, s, c in got.rows]
        if reference is None:
            reference = snapshot
        assert snapshot == reference


def test_wide_group_by_multi_column_keys_partition():
    """Tuple group keys hash-partition consistently too."""
    db = repro.connect()
    db.execute("CREATE TABLE mc (a INT, b TEXT, v FLOAT)")
    heap = db.catalog.table("mc")
    for i in range(400):
        heap.insert((i % 50, f"g{i % 40}", float(i)))
    db.execute("ANALYZE")
    sql = "SELECT a, b, sum(v) FROM mc GROUP BY a, b"
    plan = db.planner.plan_select(parse(sql))
    # warm the buffer pool so the reference run doesn't pay cold page
    # misses the later engines get as hits (fixtures skip ANALYZE because
    # histogram stats reject NaN)
    Executor(db.catalog, db.clock, engine="batch").run(plan)
    row = Executor(db.catalog, db.clock, engine="row").run(plan)
    parallel = Executor(db.catalog, db.clock, engine="parallel", workers=4,
                        morsel_rows=64).run(plan)
    assert _typed(parallel.rows) == _typed(row.rows)


# -- mid-flight budget enforcement -------------------------------------------

def _budget_db():
    db = repro.connect()
    db.execute("CREATE TABLE b (id INT, g TEXT, v FLOAT)")
    heap = db.catalog.table("b")
    for i in range(20_000):
        heap.insert((i, f"g{i % 500}", float(i)))
    db.execute("ANALYZE")
    return db


def test_parallel_budget_fires_mid_flight():
    """A cap below the query's total must interrupt a parallel run at a
    phase boundary: BudgetExceeded raised, all charges accumulated so far
    merged onto the shared clock, later phases never run."""
    db = _budget_db()
    sql = "SELECT id, v FROM b ORDER BY v DESC"
    plan = db.planner.plan_select(parse(sql))
    executor = Executor(db.catalog, db.clock, engine="parallel", workers=4)
    full = executor.run(plan)
    total = full.virtual_seconds
    start = db.clock.now
    cap = total * 0.3
    db.clock.set_limit(start + cap)
    try:
        with pytest.raises(BudgetExceeded):
            Executor(db.catalog, db.clock, engine="parallel",
                     workers=4).run(plan)
    finally:
        db.clock.set_limit(None)
    charged = db.clock.now - start
    # the cap was crossed (charges merged despite the raise) but the run
    # stopped before doing all the serial engines' work
    assert charged > cap
    assert charged < total * 0.999


def test_parallel_budget_clean_run_unaffected():
    db = _budget_db()
    sql = "SELECT g, sum(v) FROM b GROUP BY g"
    plan = db.planner.plan_select(parse(sql))
    executor = Executor(db.catalog, db.clock, engine="parallel", workers=4)
    baseline = executor.run(plan)
    db.clock.set_limit(db.clock.now + baseline.virtual_seconds * 10)
    try:
        capped = Executor(db.catalog, db.clock, engine="parallel",
                          workers=4).run(plan)
    finally:
        db.clock.set_limit(None)
    assert _typed(capped.rows) == _typed(baseline.rows)


def test_measure_downgrades_parallel_under_cap():
    """Capped measurement must not use the parallel engine: the downgraded
    run keeps serial per-charge budget enforcement and still censors."""
    db = _budget_db()
    plan = db.planner.plan_select(parse("SELECT id, v FROM b ORDER BY v"))
    parallel = Executor(db.catalog, db.clock, engine="parallel", workers=4)
    cap = 1e-6
    measured = measure_plan_latency(parallel, db.clock, plan,
                                    cap_virtual=cap)
    assert measured.censored
    assert measured.latency == cap
    # uncapped measurement is allowed to stay parallel
    uncapped = measure_plan_latency(parallel, db.clock, plan)
    assert not uncapped.censored
    assert uncapped.rows_produced == 20_000
