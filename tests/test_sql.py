"""Tests for the SQL lexer and parser, including the PREDICT extension."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.errors import ParseError
from repro.sql import ast, parse, parse_script, tokenize
from repro.sql.lexer import TokenType
from repro.storage.types import DataType


class TestLexer:
    def test_keywords_case_insensitive(self):
        tokens = tokenize("select FROM Where")
        assert [t.value for t in tokens[:-1]] == ["SELECT", "FROM", "WHERE"]
        assert all(t.type is TokenType.KEYWORD for t in tokens[:-1])

    def test_identifiers_lowercased(self):
        tokens = tokenize("MyTable")
        assert tokens[0].type is TokenType.IDENT
        assert tokens[0].value == "mytable"

    def test_numbers(self):
        tokens = tokenize("1 2.5 1e3")
        assert [t.value for t in tokens[:-1]] == ["1", "2.5", "1e3"]

    def test_string_with_escaped_quote(self):
        tokens = tokenize("'it''s'")
        assert tokens[0].type is TokenType.STRING
        assert tokens[0].value == "it's"

    def test_unterminated_string(self):
        with pytest.raises(ParseError):
            tokenize("'oops")

    def test_line_comment_skipped(self):
        tokens = tokenize("SELECT -- comment here\n 1")
        assert [t.value for t in tokens[:-1]] == ["SELECT", "1"]

    def test_operators(self):
        tokens = tokenize("a <> b <= c != d")
        ops = [t.value for t in tokens if t.type is TokenType.OPERATOR]
        assert ops == ["<>", "<=", "!="]

    def test_illegal_character(self):
        with pytest.raises(ParseError):
            tokenize("SELECT @")

    def test_eof_token(self):
        assert tokenize("")[-1].type is TokenType.EOF


class TestSelectParsing:
    def test_simple(self):
        stmt = parse("SELECT a, b FROM t")
        assert isinstance(stmt, ast.Select)
        assert len(stmt.items) == 2
        assert stmt.from_table.name == "t"

    def test_star(self):
        stmt = parse("SELECT * FROM t")
        assert isinstance(stmt.items[0].expr, ast.Star)

    def test_qualified_star(self):
        stmt = parse("SELECT t.* FROM t")
        assert isinstance(stmt.items[0].expr, ast.Star)
        assert stmt.items[0].expr.table == "t"

    def test_aliases(self):
        stmt = parse("SELECT a AS x, b y FROM t AS u")
        assert stmt.items[0].alias == "x"
        assert stmt.items[1].alias == "y"
        assert stmt.from_table.alias == "u"

    def test_joins_inner_and_comma(self):
        stmt = parse("SELECT * FROM a JOIN b ON a.x = b.y, c")
        assert stmt.joins[0].kind == "inner"
        assert stmt.joins[0].condition is not None
        assert stmt.joins[1].kind == "cross"

    def test_cross_join_keyword(self):
        stmt = parse("SELECT * FROM a CROSS JOIN b")
        assert stmt.joins[0].kind == "cross"

    def test_where_group_order_limit(self):
        stmt = parse("SELECT a, count(*) FROM t WHERE a > 1 GROUP BY a "
                     "ORDER BY a DESC LIMIT 5 OFFSET 2")
        assert stmt.where is not None
        assert len(stmt.group_by) == 1
        assert stmt.order_by[0].descending is True
        assert stmt.limit == 5
        assert stmt.offset == 2

    def test_distinct(self):
        assert parse("SELECT DISTINCT a FROM t").distinct is True

    def test_tableless(self):
        stmt = parse("SELECT 1 + 1")
        assert stmt.from_table is None

    def test_trailing_garbage_rejected(self):
        with pytest.raises(ParseError):
            parse("SELECT 1 FROM t banana extra")


class TestExpressions:
    def _where(self, condition: str) -> ast.Expr:
        return parse(f"SELECT 1 FROM t WHERE {condition}").where

    def test_precedence_and_or(self):
        expr = self._where("a = 1 OR b = 2 AND c = 3")
        assert isinstance(expr, ast.BinaryOp) and expr.op == "OR"
        assert isinstance(expr.right, ast.BinaryOp)
        assert expr.right.op == "AND"

    def test_arithmetic_precedence(self):
        expr = self._where("a + b * c = 7")
        add = expr.left
        assert isinstance(add, ast.BinaryOp) and add.op == "+"
        assert isinstance(add.right, ast.BinaryOp) and add.right.op == "*"

    def test_parens_override(self):
        expr = self._where("(a + b) * c = 7")
        mul = expr.left
        assert mul.op == "*"
        assert mul.left.op == "+"

    def test_not_null_between_in_like(self):
        assert isinstance(self._where("a IS NULL"), ast.IsNull)
        assert self._where("a IS NOT NULL").negated is True
        between = self._where("a BETWEEN 1 AND 3")
        assert isinstance(between, ast.Between)
        in_list = self._where("a IN (1, 2, 3)")
        assert isinstance(in_list, ast.InList)
        assert len(in_list.items) == 3
        not_in = self._where("a NOT IN (1)")
        assert not_in.negated is True
        like = self._where("a LIKE 'x%'")
        assert like.op == "LIKE"

    def test_neq_normalized(self):
        assert self._where("a != 1").op == "<>"

    def test_unary_minus(self):
        expr = self._where("a = -5")
        assert isinstance(expr.right, ast.UnaryOp)

    def test_function_calls(self):
        stmt = parse("SELECT count(*), sum(x), coalesce(a, 0) FROM t")
        count = stmt.items[0].expr
        assert isinstance(count, ast.FuncCall) and count.name == "count"
        assert isinstance(count.args[0], ast.Star)

    def test_count_distinct(self):
        stmt = parse("SELECT count(DISTINCT a) FROM t")
        assert stmt.items[0].expr.distinct is True

    def test_is_aggregate_detection(self):
        stmt = parse("SELECT sum(x) + 1 FROM t")
        assert ast.is_aggregate(stmt.items[0].expr)
        stmt2 = parse("SELECT x + 1 FROM t")
        assert not ast.is_aggregate(stmt2.items[0].expr)

    def test_referenced_columns(self):
        expr = self._where("a.x = 1 AND y > b.z")
        refs = ast.referenced_columns(expr)
        assert {(r.table, r.name) for r in refs} == {
            ("a", "x"), (None, "y"), ("b", "z")}


class TestDmlDdlParsing:
    def test_create_table(self):
        stmt = parse("CREATE TABLE t (id INT UNIQUE, name TEXT NOT NULL, "
                     "v FLOAT)")
        assert isinstance(stmt, ast.CreateTable)
        assert stmt.columns[0].unique is True
        assert stmt.columns[1].nullable is False
        assert stmt.columns[2].dtype is DataType.FLOAT

    def test_drop_table(self):
        assert parse("DROP TABLE t").if_exists is False
        assert parse("DROP TABLE IF EXISTS t").if_exists is True

    def test_create_index(self):
        stmt = parse("CREATE INDEX i ON t (c) USING hash")
        assert isinstance(stmt, ast.CreateIndex)
        assert stmt.kind == "hash"

    def test_insert(self):
        stmt = parse("INSERT INTO t (a, b) VALUES (1, 'x'), (2, 'y')")
        assert stmt.columns == ("a", "b")
        assert len(stmt.rows) == 2

    def test_insert_without_columns(self):
        stmt = parse("INSERT INTO t VALUES (1)")
        assert stmt.columns == ()

    def test_update(self):
        stmt = parse("UPDATE t SET a = 1, b = b + 1 WHERE id = 3")
        assert len(stmt.assignments) == 2
        assert stmt.where is not None

    def test_delete(self):
        stmt = parse("DELETE FROM t WHERE a < 0")
        assert isinstance(stmt, ast.Delete)

    def test_analyze(self):
        assert parse("ANALYZE").table is None
        assert parse("ANALYZE users").table == "users"

    def test_txn_statements(self):
        assert isinstance(parse("BEGIN"), ast.Begin)
        assert isinstance(parse("COMMIT"), ast.Commit)
        assert isinstance(parse("ROLLBACK"), ast.Rollback)

    def test_parse_script(self):
        stmts = parse_script("SELECT 1; SELECT 2;")
        assert len(stmts) == 2


class TestPredictParsing:
    def test_paper_listing_1_regression(self):
        stmt = parse("PREDICT VALUE OF score FROM review "
                     "WHERE brand_name = 'Special Goods' "
                     "TRAIN ON * WITH brand_name <> 'Special Goods'")
        assert isinstance(stmt, ast.Predict)
        assert stmt.task == "regression"
        assert stmt.target == "score"
        assert stmt.table == "review"
        assert stmt.train_on == ("*",)
        assert stmt.train_filter is not None
        assert stmt.where is not None

    def test_paper_listing_2_classification(self):
        stmt = parse("PREDICT CLASS OF outcome FROM diabetes "
                     "TRAIN ON pregnancies, glucose, blood_pressure "
                     "VALUES (6, 148, 72), (1, 85, 66)")
        assert stmt.task == "classification"
        assert stmt.train_on == ("pregnancies", "glucose", "blood_pressure")
        assert len(stmt.inline_rows) == 2

    def test_table1_workload_e(self):
        stmt = parse("PREDICT VALUE OF click_rate FROM avazu TRAIN ON *")
        assert stmt.task == "regression"
        assert stmt.target == "click_rate"

    def test_table1_workload_h(self):
        stmt = parse("PREDICT CLASS OF outcome FROM diabetes TRAIN ON *")
        assert stmt.task == "classification"

    def test_minimal_predict(self):
        stmt = parse("PREDICT CLASS OF y FROM t")
        assert stmt.train_on == ("*",)
        assert stmt.inline_rows == ()

    def test_predict_requires_of(self):
        with pytest.raises(ParseError):
            parse("PREDICT CLASS y FROM t")


@given(st.integers(min_value=-10**9, max_value=10**9))
@settings(max_examples=50)
def test_integer_literal_roundtrip(value):
    stmt = parse(f"SELECT {value}" if value >= 0 else f"SELECT ({value})")
    expr = stmt.items[0].expr
    if value >= 0:
        assert expr.value == value
    else:
        assert isinstance(expr, ast.UnaryOp)


@given(st.text(alphabet=st.characters(min_codepoint=32, max_codepoint=126,
                                      exclude_characters="'"),
               max_size=40))
@settings(max_examples=50)
def test_string_literal_roundtrip(text):
    stmt = parse(f"SELECT '{text}'")
    assert stmt.items[0].expr.value == text
