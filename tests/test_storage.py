"""Tests for the storage substrate: types, schema, pages, heap, buffer."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.errors import BindError, ConstraintViolation, TypeMismatchError
from repro.common.simtime import SimClock
from repro.storage import (
    PAGE_CAPACITY_BYTES,
    BufferPool,
    Column,
    DataType,
    HeapPage,
    HeapTable,
    RecordId,
    TableSchema,
    coerce_value,
    value_size_bytes,
)


class TestDataType:
    def test_from_name_canonical(self):
        assert DataType.from_name("INT") is DataType.INT
        assert DataType.from_name("text") is DataType.TEXT

    def test_from_name_aliases(self):
        assert DataType.from_name("INTEGER") is DataType.INT
        assert DataType.from_name("varchar") is DataType.TEXT
        assert DataType.from_name("DOUBLE") is DataType.FLOAT
        assert DataType.from_name("BOOLEAN") is DataType.BOOL

    def test_from_name_unknown(self):
        with pytest.raises(TypeMismatchError):
            DataType.from_name("BLOB")


class TestCoercion:
    def test_null_passes_all_types(self):
        for dtype in DataType:
            assert coerce_value(None, dtype) is None

    def test_int_widening_to_float(self):
        assert coerce_value(3, DataType.FLOAT) == 3.0
        assert isinstance(coerce_value(3, DataType.FLOAT), float)

    def test_integral_float_narrows_to_int(self):
        assert coerce_value(4.0, DataType.INT) == 4

    def test_fractional_float_rejected_for_int(self):
        with pytest.raises(TypeMismatchError):
            coerce_value(4.5, DataType.INT)

    def test_bool_is_not_int(self):
        with pytest.raises(TypeMismatchError):
            coerce_value(True, DataType.INT)

    def test_string_rejected_for_numeric(self):
        with pytest.raises(TypeMismatchError):
            coerce_value("5", DataType.INT)

    def test_text_accepts_only_str(self):
        assert coerce_value("hi", DataType.TEXT) == "hi"
        with pytest.raises(TypeMismatchError):
            coerce_value(5, DataType.TEXT)

    def test_value_sizes(self):
        assert value_size_bytes(None, DataType.INT) == 1
        assert value_size_bytes(5, DataType.INT) == 8
        assert value_size_bytes("abcd", DataType.TEXT) == 8


class TestTableSchema:
    def test_column_lookup(self, simple_schema):
        assert simple_schema.index_of("name") == 1
        assert simple_schema.index_of("NAME") == 1  # case-insensitive
        assert simple_schema.column("score").dtype is DataType.FLOAT

    def test_unknown_column(self, simple_schema):
        with pytest.raises(BindError):
            simple_schema.index_of("missing")

    def test_duplicate_columns_rejected(self):
        with pytest.raises(BindError):
            TableSchema("t", [Column("a", DataType.INT),
                              Column("A", DataType.INT)])

    def test_empty_schema_rejected(self):
        with pytest.raises(BindError):
            TableSchema("t", [])

    def test_coerce_row_arity(self, simple_schema):
        with pytest.raises(TypeMismatchError):
            simple_schema.coerce_row((1, "x"))

    def test_coerce_row_not_null(self):
        schema = TableSchema("t", [Column("a", DataType.INT,
                                          nullable=False)])
        with pytest.raises(TypeMismatchError):
            schema.coerce_row((None,))

    def test_non_unique_columns_for_train_on_star(self, simple_schema):
        # 'id' is UNIQUE and must be excluded (paper Listing 1 semantics)
        assert "id" not in simple_schema.non_unique_column_names()
        assert "name" in simple_schema.non_unique_column_names()

    def test_project(self, simple_schema):
        projected = simple_schema.project(["score", "id"])
        assert projected.column_names() == ["score", "id"]


class TestHeapPage:
    def test_insert_read(self):
        page = HeapPage(0)
        rid = page.insert((1, "a"), 20)
        assert page.read(rid.slot_no) == (1, "a")
        assert page.live_count == 1

    def test_delete_leaves_tombstone(self):
        page = HeapPage(0)
        rid0 = page.insert((1,), 10)
        rid1 = page.insert((2,), 10)
        page.delete(rid0.slot_no)
        assert page.read(rid0.slot_no) is None
        # rid1 still addressable at its old slot
        assert page.read(rid1.slot_no) == (2,)
        assert page.live_count == 1

    def test_double_delete_raises(self):
        page = HeapPage(0)
        rid = page.insert((1,), 10)
        page.delete(rid.slot_no)
        with pytest.raises(KeyError):
            page.delete(rid.slot_no)

    def test_capacity_accounting(self):
        page = HeapPage(0)
        assert page.has_room(PAGE_CAPACITY_BYTES)
        page.insert((0,), PAGE_CAPACITY_BYTES)
        assert not page.has_room(1)

    def test_scan_skips_tombstones(self):
        page = HeapPage(0)
        rids = [page.insert((i,), 10) for i in range(5)]
        page.delete(rids[2].slot_no)
        live = [row for _, row in page.scan()]
        assert live == [(0,), (1,), (3,), (4,)]


class TestHeapTable:
    def _table(self, schema):
        return HeapTable(schema)

    def test_insert_and_len(self, simple_schema):
        table = self._table(simple_schema)
        for i in range(10):
            table.insert((i, f"n{i}", float(i), i % 2 == 0))
        assert len(table) == 10

    def test_read_by_rid(self, simple_schema):
        table = self._table(simple_schema)
        rid = table.insert((1, "x", 0.5, True))
        assert table.read(rid) == (1, "x", 0.5, True)

    def test_read_missing_rid(self, simple_schema):
        table = self._table(simple_schema)
        assert table.read(RecordId(99, 0)) is None

    def test_unique_constraint_enforced(self, simple_schema):
        table = self._table(simple_schema)
        table.insert((1, "a", 0.0, True))
        with pytest.raises(ConstraintViolation):
            table.insert((1, "b", 1.0, False))

    def test_unique_constraint_allows_after_delete(self, simple_schema):
        table = self._table(simple_schema)
        rid = table.insert((1, "a", 0.0, True))
        table.delete(rid)
        table.insert((1, "b", 1.0, False))  # ok again

    def test_update_moves_unique_key(self, simple_schema):
        table = self._table(simple_schema)
        rid = table.insert((1, "a", 0.0, True))
        table.update(rid, (2, "a", 0.0, True))
        assert table.lookup_unique("id", 2) == rid
        assert table.lookup_unique("id", 1) is None

    def test_update_conflicting_unique_rejected(self, simple_schema):
        table = self._table(simple_schema)
        table.insert((1, "a", 0.0, True))
        rid2 = table.insert((2, "b", 0.0, True))
        with pytest.raises(ConstraintViolation):
            table.update(rid2, (1, "b", 0.0, True))

    def test_update_same_row_same_key_ok(self, simple_schema):
        table = self._table(simple_schema)
        rid = table.insert((1, "a", 0.0, True))
        table.update(rid, (1, "a", 9.0, False))  # no self-conflict
        assert table.read(rid)[2] == 9.0

    def test_scan_order_and_rids_stable(self, simple_schema):
        table = self._table(simple_schema)
        rids = [table.insert((i, f"n{i}", 0.0, True)) for i in range(100)]
        table.delete(rids[50])
        scanned = {rid: row for rid, row in table.scan()}
        assert rids[50] not in scanned
        assert scanned[rids[51]][0] == 51

    def test_many_rows_span_pages(self, simple_schema):
        table = self._table(simple_schema)
        for i in range(2000):
            table.insert((i, "name-" * 10, float(i), False))
        assert table.page_count > 1
        assert len(table) == 2000

    @given(st.lists(st.integers(min_value=0, max_value=10_000),
                    unique=True, min_size=1, max_size=200))
    @settings(max_examples=20, deadline=None)
    def test_insert_scan_roundtrip_property(self, keys):
        schema = TableSchema("t", [Column("k", DataType.INT, unique=True)])
        table = HeapTable(schema)
        for k in keys:
            table.insert((k,))
        scanned = sorted(row[0] for _, row in table.scan())
        assert scanned == sorted(keys)


class TestBufferPool:
    def test_miss_then_hit(self):
        pool = BufferPool(capacity_pages=4)
        assert pool.access("t", 0) is False  # cold miss
        assert pool.access("t", 0) is True   # now hot

    def test_lru_eviction(self):
        pool = BufferPool(capacity_pages=2)
        pool.access("t", 0)
        pool.access("t", 1)
        pool.access("t", 2)  # evicts page 0
        assert pool.access("t", 0) is False

    def test_access_refreshes_recency(self):
        pool = BufferPool(capacity_pages=2)
        pool.access("t", 0)
        pool.access("t", 1)
        pool.access("t", 0)  # page 0 now MRU
        pool.access("t", 2)  # evicts page 1
        assert pool.access("t", 0) is True

    def test_hit_ratio(self):
        pool = BufferPool(capacity_pages=10)
        pool.access("t", 0)
        pool.access("t", 0)
        pool.access("t", 0)
        assert pool.hit_ratio() == pytest.approx(2 / 3)

    def test_per_table_stats(self):
        pool = BufferPool(capacity_pages=10)
        pool.access("a", 0)
        pool.access("a", 0)
        pool.access("b", 0)
        assert pool.table_hit_ratio("a") == pytest.approx(0.5)
        assert pool.table_hit_ratio("b") == 0.0

    def test_evict_table(self):
        pool = BufferPool(capacity_pages=10)
        pool.access("a", 0)
        pool.access("b", 0)
        assert pool.evict_table("a") == 1
        assert pool.access("a", 0) is False

    def test_charges_clock(self):
        clock = SimClock()
        pool = BufferPool(capacity_pages=4, clock=clock)
        pool.access("t", 0)
        miss_time = clock.now
        pool.access("t", 0)
        hit_time = clock.now - miss_time
        assert miss_time > hit_time > 0

    def test_snapshot_fields(self):
        pool = BufferPool(capacity_pages=8)
        pool.access("t", 0)
        snap = pool.snapshot()
        assert set(snap) == {"hit_ratio", "resident_pages",
                             "capacity_pages", "fill_fraction",
                             "view_hit_ratio", "view_rebuilds"}
        assert snap["resident_pages"] == 1.0

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            BufferPool(capacity_pages=0)


class TestBatchScans:
    """Contract tests for scan_batches / scan_column_batches."""

    def _table(self, rows=100):
        from repro.storage.heap import HeapTable
        from repro.storage.schema import TableSchema
        schema = TableSchema("t", [Column("id", DataType.INT),
                                   Column("name", DataType.TEXT)])
        table = HeapTable(schema)
        rids = [table.insert((i, f"n{i}")) for i in range(rows)]
        return table, rids

    def test_scan_batches_matches_scan_order(self):
        table, _ = self._table(100)
        flattened = [row for batch in table.scan_batches(7) for row in batch]
        assert flattened == [row for _, row in table.scan()]

    def test_scan_batches_sizes(self):
        table, _ = self._table(100)
        sizes = [len(b) for b in table.scan_batches(32)]
        assert sizes == [32, 32, 32, 4]
        assert all(s > 0 for s in sizes)

    def test_scan_batches_skips_tombstones(self):
        table, rids = self._table(50)
        for rid in rids[::2]:
            table.delete(rid)
        flattened = [row for batch in table.scan_batches(8) for row in batch]
        assert flattened == [(i, f"n{i}") for i in range(1, 50, 2)]

    def test_scan_batches_empty_table(self):
        table, _ = self._table(0)
        assert list(table.scan_batches(16)) == []

    def test_scan_batches_rejects_bad_size(self):
        table, _ = self._table(1)
        with pytest.raises(ValueError):
            list(table.scan_batches(0))

    def test_column_batches_match_scan(self):
        table, _ = self._table(100)
        rows = []
        for columns, n in table.scan_column_batches(16):
            assert n == len(columns[0])
            rows.extend(zip(*columns))
        assert rows == [row for _, row in table.scan()]

    def test_column_cache_invalidated_by_mutation(self):
        table, rids = self._table(30)
        before = [row for cols, _ in table.scan_column_batches(8)
                  for row in zip(*cols)]
        table.update(rids[3], (999, "edited"))
        table.delete(rids[4])
        after = [row for cols, _ in table.scan_column_batches(8)
                 for row in zip(*cols)]
        assert before != after
        assert (999, "edited") in after
        assert (4, "n4") not in after

    def test_scan_batches_touches_buffer_pool_once_per_page(self):
        from repro.storage.buffer import BufferPool
        from repro.storage.heap import HeapTable
        from repro.storage.schema import TableSchema
        schema = TableSchema("t", [Column("id", DataType.INT)])
        pool = BufferPool(capacity_pages=64)
        table = HeapTable(schema, buffer_pool=pool)
        for i in range(500):
            table.insert((i,))
        list(table.scan_batches(64))
        accesses_then = pool._hits + pool._misses
        list(table.scan_column_batches(64))
        assert (pool._hits + pool._misses
                - accesses_then) == table.page_count


def test_scan_column_batches_start_page_and_tail_start_page():
    """Tail scans: start_page skips earlier pages (no buffer touches, no
    reads), and tail_start_page locates the window from per-page live
    counts alone."""
    import repro
    db = repro.connect()
    db.execute("CREATE TABLE t (id INT, v FLOAT)")
    heap = db.catalog.table("t")
    for i in range(2000):
        heap.insert((i, float(i)))
    assert heap.page_count > 2
    serial = [row for _, row in heap.scan()]

    # suffix reconstruction from any start page
    start = heap.page_count - 2
    skipped = sum(heap._pages[i].live_count for i in range(start))
    suffix = [row for columns, n in heap.scan_column_batches(64, start)
              for row in zip(*columns)]
    assert suffix == serial[skipped:]

    # only the scanned pages touch the buffer pool
    pool = db.catalog.buffer_pool
    before = pool._hits + pool._misses
    list(heap.scan_column_batches(64, start))
    assert (pool._hits + pool._misses) - before == heap.page_count - start

    # tail_start_page: pure metadata window location
    assert heap.tail_start_page(0) == heap.page_count - 1
    assert heap.tail_start_page(1) == heap.page_count - 1
    assert heap.tail_start_page(len(heap)) == 0
    assert heap.tail_start_page(10 ** 9) == 0
    last_live = heap._pages[-1].live_count
    assert heap.tail_start_page(last_live + 1) == heap.page_count - 2
    covered = sum(p.live_count
                  for p in heap._pages[heap.tail_start_page(200):])
    assert covered >= 200
