"""Morsel scheduler edge cases and guarantees.

The three-way result parity lives in test_batch_parity.py; this file
exercises the scheduler itself: degenerate morsel shapes (empty tables,
1-row morsels, more workers than morsels), merge of empty partial sets,
determinism across worker counts, the virtual-time invariants
(total == serial total, makespan <= total), and the storage-level morsel
splitting contract.
"""

from __future__ import annotations

import pytest

import repro
from repro.common.simtime import SimClock, WorkerClocks
from repro.exec.executor import Executor
from repro.exec.parallel import MorselScheduler
from repro.sql import parse


def _typed(rows):
    return [tuple((type(v), v) for v in row) for row in rows]


def _fresh_db(rows: int = 60):
    db = repro.connect()
    db.execute("CREATE TABLE t (id INT UNIQUE, grp TEXT, v FLOAT)")
    heap = db.catalog.table("t")
    for i in range(rows):
        heap.insert((i, ["a", "b", "c"][i % 3], float(i) * 0.5))
    db.execute("ANALYZE")
    return db


def _run(db, sql, **executor_kwargs):
    plan = db.planner.plan_select(parse(sql))
    return Executor(db.catalog, db.clock, **executor_kwargs).run(plan)


QUERIES = [
    "SELECT * FROM t",
    "SELECT grp, count(*), sum(v), avg(v) FROM t GROUP BY grp",
    "SELECT count(*) FROM t WHERE v > 5.0",
    "SELECT id FROM t WHERE grp = 'a' ORDER BY id",
]


# -- degenerate shapes -------------------------------------------------------

@pytest.mark.parametrize("sql", QUERIES)
def test_empty_table(sql):
    """Zero morsels: scans yield nothing, aggregate merges zero partials."""
    db = _fresh_db(rows=0)
    batch = _run(db, sql, engine="batch")
    parallel = _run(db, sql, engine="parallel", workers=4)
    assert _typed(parallel.rows) == _typed(batch.rows)


def test_empty_table_global_aggregate_default_row():
    """A global aggregate over zero rows still yields its default row —
    the merge of an *empty* partial list."""
    db = _fresh_db(rows=0)
    result = _run(db, "SELECT count(*), sum(v) FROM t", engine="parallel")
    assert result.rows == [(0, None)]


@pytest.mark.parametrize("sql", QUERIES)
def test_one_row_morsels(sql):
    """morsel_rows=1: one morsel per row, maximal split/merge traffic."""
    db = _fresh_db(rows=17)
    batch = _run(db, sql, engine="batch")
    parallel = _run(db, sql, engine="parallel", workers=3, morsel_rows=1)
    assert parallel.extra["parallel"]["tasks"] >= 17
    assert _typed(parallel.rows) == _typed(batch.rows)
    assert parallel.virtual_seconds == pytest.approx(
        batch.virtual_seconds, rel=1e-6, abs=1e-9)


@pytest.mark.parametrize("sql", QUERIES)
def test_more_workers_than_morsels(sql):
    """workers > morsels: idle workers must not corrupt results or time."""
    db = _fresh_db(rows=5)
    batch = _run(db, sql, engine="batch")
    parallel = _run(db, sql, engine="parallel", workers=16, morsel_rows=4096)
    assert _typed(parallel.rows) == _typed(batch.rows)
    assert parallel.virtual_seconds == pytest.approx(
        batch.virtual_seconds, rel=1e-6, abs=1e-9)


def test_filter_rejects_everything_before_aggregate():
    """Every morsel filters to empty: the aggregate sees no partials at
    all, but grouped queries emit nothing and global ones their default."""
    db = _fresh_db()
    assert _run(db, "SELECT grp, count(*) FROM t WHERE v < 0 GROUP BY grp",
                engine="parallel", morsel_rows=8).rows == []
    assert _run(db, "SELECT count(*), max(v) FROM t WHERE v < 0",
                engine="parallel", morsel_rows=8).rows == [(0, None)]


# -- determinism -------------------------------------------------------------

def test_deterministic_across_worker_counts():
    """Rows, order, and charged totals are identical for any worker count
    (single-worker inline mode is the reference)."""
    db = _fresh_db(rows=200)
    sql = "SELECT grp, count(*), sum(v) FROM t WHERE v > 1.0 GROUP BY grp"
    plan = db.planner.plan_select(parse(sql))
    reference = None
    for workers in (1, 2, 4, 7):
        executor = Executor(db.catalog, db.clock, engine="parallel",
                            workers=workers, morsel_rows=16)
        start = db.clock.now
        result = executor.run(plan)
        charged = db.clock.now - start
        if reference is None:
            reference = (_typed(result.rows), charged)
        else:
            assert _typed(result.rows) == reference[0]
            assert charged == pytest.approx(reference[1], rel=1e-9)


def test_repeated_runs_identical():
    db = _fresh_db(rows=100)
    sql = "SELECT grp, sum(v) FROM t GROUP BY grp"
    first = _run(db, sql, engine="parallel", workers=4, morsel_rows=8)
    second = _run(db, sql, engine="parallel", workers=4, morsel_rows=8)
    assert _typed(first.rows) == _typed(second.rows)


# -- virtual-time invariants -------------------------------------------------

def test_makespan_bounded_by_charged_total():
    db = _fresh_db(rows=500)
    result = _run(db, "SELECT grp, count(*) FROM t WHERE v > 10 GROUP BY grp",
                  engine="parallel", workers=4, morsel_rows=16)
    stats = result.extra["parallel"]
    assert stats["virtual_makespan"] <= stats["virtual_charged"] + 1e-12
    assert stats["modeled_speedup"] >= 1.0
    # the charged total is what landed on the shared clock
    assert stats["virtual_charged"] == pytest.approx(
        result.virtual_seconds, rel=1e-9)


def test_single_worker_makespan_equals_total():
    db = _fresh_db(rows=200)
    stats = _run(db, "SELECT count(*) FROM t", engine="parallel",
                 workers=1).extra["parallel"]
    assert stats["virtual_makespan"] == pytest.approx(
        stats["virtual_charged"], rel=1e-12)


def test_more_workers_never_slower():
    db = _fresh_db(rows=2000)
    sql = "SELECT grp, sum(v) FROM t WHERE v > 0 GROUP BY grp"
    spans = []
    for workers in (1, 2, 4):
        stats = _run(db, sql, engine="parallel", workers=workers,
                     morsel_rows=64).extra["parallel"]
        spans.append(stats["virtual_makespan"])
    assert spans[0] >= spans[1] >= spans[2]


def test_limit_plans_run_on_serial_lane():
    """LIMIT anywhere => whole-tree serial fallback: no parallel phases,
    and charges exactly match the batch engine's early termination."""
    db = _fresh_db(rows=300)
    sql = "SELECT id FROM t WHERE v > 1 LIMIT 3"
    batch = _run(db, sql, engine="batch")
    parallel = _run(db, sql, engine="parallel", workers=4, morsel_rows=8)
    assert parallel.rows == batch.rows
    assert parallel.extra["parallel"]["parallel_phases"] == 0
    assert parallel.virtual_seconds == pytest.approx(
        batch.virtual_seconds, rel=1e-9, abs=1e-12)


# -- WorkerClocks ------------------------------------------------------------

def test_worker_clocks_list_scheduling():
    """Six equal 1s tasks on 2 virtual workers => 3s makespan, 6s total."""
    clocks = WorkerClocks()
    shards = []
    for _ in range(6):
        shard = SimClock()
        shard.advance(1.0, "work")
        shards.append(shard)
    clocks.close_phase(shards, workers=2)
    assert clocks.total() == pytest.approx(6.0)
    assert clocks.makespan() == pytest.approx(3.0)
    target = SimClock()
    clocks.merge_into(target)
    assert target.now == pytest.approx(6.0)
    assert target.category_total("work") == pytest.approx(6.0)


def test_worker_clocks_serial_lane_counts_fully():
    clocks = WorkerClocks()
    clocks.serial_lane.advance(2.0, "sort")
    shard = SimClock()
    shard.advance(4.0, "scan")
    clocks.close_phase([shard], workers=4)
    assert clocks.total() == pytest.approx(6.0)
    # one task cannot be split across workers: 4s phase + 2s lane
    assert clocks.makespan() == pytest.approx(6.0)


def test_worker_clocks_empty_phase_is_noop():
    clocks = WorkerClocks()
    clocks.close_phase([], workers=4)
    assert clocks.phases == 0
    assert clocks.total() == 0.0
    assert clocks.makespan() == 0.0


# -- knobs and validation ----------------------------------------------------

def test_scheduler_rejects_bad_knobs():
    clock = SimClock()
    with pytest.raises(ValueError):
        MorselScheduler(clock, workers=0)
    with pytest.raises(ValueError):
        MorselScheduler(clock, morsel_rows=0)
    with pytest.raises(ValueError):
        Executor(repro.connect().catalog, engine="parallel", workers=0)


def test_unknown_engine_rejected():
    with pytest.raises(ValueError):
        Executor(repro.connect().catalog, engine="morsel")


# -- storage morsel splitting ------------------------------------------------

def test_scan_morsels_contract():
    """Concatenated morsels reproduce scan order; sizes are exact except
    the final short morsel; each page hits the buffer pool exactly once."""
    db = _fresh_db(rows=137)
    heap = db.catalog.table("t")
    serial = [row for _, row in heap.scan()]
    pool = db.catalog.buffer_pool
    before = pool._hits + pool._misses
    morsels = heap.scan_morsels(10)
    touches = (pool._hits + pool._misses) - before
    assert touches == heap.page_count
    assert [n for _, n in morsels[:-1]] == [10] * (len(morsels) - 1)
    assert 0 < morsels[-1][1] <= 10
    rebuilt = [row for columns, n in morsels
               for row in zip(*columns)] if morsels else []
    assert rebuilt == serial


def test_scan_morsels_single_row_granularity():
    db = _fresh_db(rows=7)
    heap = db.catalog.table("t")
    morsels = heap.scan_morsels(1)
    assert len(morsels) == 7
    assert all(n == 1 for _, n in morsels)


def test_scan_morsels_empty_table():
    db = _fresh_db(rows=0)
    assert db.catalog.table("t").scan_morsels(16) == []
