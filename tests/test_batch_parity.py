"""Row vs batch vs parallel engine parity.

Every query runs through all three execution paths against the same
catalog and must produce *bit-identical* rows (values and Python types) in
the same order, the same column names, and the same simtime-visible cost
within float-accumulation tolerance.  The query list covers every operator
and every expression family the vectorizer handles, plus the fallback
cases (non-constant LIKE, scalar functions) and the Table 1 workload
predicates.  The parallel engine runs with deliberately tiny morsels
(16 rows) and several workers so every query exercises real morsel
splitting, thread-local partials, and the morsel-order merge.
"""

from __future__ import annotations

import numpy as np
import pytest

import repro
from repro.exec.executor import Executor
from repro.sql import parse

# scan / filter / project / join / aggregate / sort / limit / distinct,
# vectorized and fallback expression forms alike
PARITY_QUERIES = [
    "SELECT * FROM users",
    "SELECT id, name FROM users WHERE age >= 30",
    "SELECT * FROM users WHERE age > 25 AND city = 'sg'",
    "SELECT * FROM users WHERE age < 25 OR city = 'tok'",
    "SELECT * FROM users WHERE NOT (age < 50)",
    "SELECT * FROM users WHERE age BETWEEN 25 AND 35",
    "SELECT * FROM users WHERE city IN ('sg', 'ny')",
    "SELECT * FROM users WHERE age IN (20, 30, 40)",
    "SELECT * FROM users WHERE nickname IS NULL",
    "SELECT * FROM users WHERE nickname IS NOT NULL",
    "SELECT * FROM users WHERE name LIKE 'user1%'",           # vector LIKE
    "SELECT * FROM users WHERE name LIKE 'user_'",            # _ wildcard
    "SELECT * FROM users WHERE name LIKE 'user7'",            # no wildcard
    "SELECT * FROM users WHERE nickname LIKE '%3'",           # NULL-heavy col
    "SELECT * FROM users WHERE name LIKE city",               # row fallback
    # vectorized scalar functions (and their declined/fallback corners)
    "SELECT * FROM users WHERE length(name) = 6",
    "SELECT * FROM users WHERE lower(city) = 'sg'",
    "SELECT * FROM users WHERE upper(name) = 'USER7'",
    "SELECT * FROM users WHERE length(nickname) = 5",         # NULL-heavy
    "SELECT * FROM users WHERE abs(age - 30) <= 5",
    "SELECT * FROM users WHERE round(score) = 12",            # NULL-heavy
    "SELECT * FROM users WHERE round(score, 1) > 3",          # 2-arg: row
    "SELECT * FROM users WHERE coalesce(score, 0) < 10",
    "SELECT * FROM users WHERE length(coalesce(nickname, name)) > 5",
    "SELECT * FROM users WHERE age * 2 + 1 > 60",
    "SELECT * FROM users WHERE age / 2 >= 15",
    "SELECT * FROM users WHERE age % 3 = 1",
    "SELECT * FROM users WHERE -age < -30",
    "SELECT * FROM users WHERE coalesce(nickname, name) <> ''",
    "SELECT name AS who, age + 1 AS next_age FROM users",
    "SELECT count(*) FROM users",
    "SELECT count(*) FROM users WHERE age > 1000",
    "SELECT avg(age), min(age), max(age), sum(age) FROM users",
    "SELECT count(DISTINCT city) FROM users",
    "SELECT max(age) - min(age) FROM users",
    "SELECT city, count(*), sum(age), avg(age) FROM users "
    "GROUP BY city ORDER BY city",
    "SELECT status, count(*) FROM orders GROUP BY status",
    "SELECT age FROM users ORDER BY age DESC LIMIT 3 OFFSET 1",
    "SELECT * FROM users ORDER BY city, age LIMIT 10",
    # un-LIMITed sorts run morsel-parallel (sorted runs + k-way merge)
    "SELECT * FROM users ORDER BY city DESC, age DESC",
    "SELECT * FROM users ORDER BY score DESC, id",        # NULL-heavy key
    "SELECT name, nickname FROM users ORDER BY nickname, name DESC",
    # LIMIT over a streaming chain: the pushed-down row budget makes the
    # batch engine scan (and charge) exactly the row engine's rows
    "SELECT * FROM users LIMIT 1",
    "SELECT name, age FROM users LIMIT 5 OFFSET 2",
    "SELECT DISTINCT city FROM users",
    "SELECT DISTINCT status FROM orders ORDER BY status",
    "SELECT name FROM users WHERE id = 7",                    # index scan
    "SELECT name FROM users WHERE id = 7 AND age > 0",        # index+residual
    "SELECT count(*) FROM users u JOIN orders o ON u.id = o.user_id",
    "SELECT u.name, o.amount FROM users u JOIN orders o "
    "ON u.id = o.user_id WHERE u.age < 25 AND o.amount > 100",
    "SELECT count(*) FROM users u JOIN orders o ON u.id = o.user_id "
    "WHERE u.age < 30",
    "SELECT count(*) FROM users, orders",                     # cross join
    "SELECT 2 + 3",
    "SELECT * FROM users WHERE nickname = 'nope'",            # NULL-heavy col
    "SELECT * FROM users WHERE nickname < 'zzz'",             # obj ordering
    # nullable numeric column: NULLs must not leak into vectorized compares
    "SELECT * FROM users WHERE score > 50",
    "SELECT * FROM users WHERE score IS NULL",
    "SELECT count(score), sum(score), avg(score), min(score), max(score) "
    "FROM users",
    "SELECT city, count(score), sum(score) FROM users GROUP BY city",
    "SELECT count(DISTINCT score) FROM users",
    # Table 1 workload predicates (the TRAIN ON / WHERE shapes)
    "SELECT count(*) FROM avazu WHERE click_rate IS NOT NULL",
    "SELECT f0, count(*), avg(click_rate) FROM avazu WHERE f1 >= 0 "
    "GROUP BY f0 ORDER BY f0 LIMIT 20",
    # fused-pipeline shapes (PR 5): multi-conjunct filters, computed
    # projections, join-probe chains, LIMIT, NULL-heavy columns
    "SELECT id, name FROM users WHERE age > 22 AND city <> 'ny' "
    "AND id % 2 = 0",
    "SELECT age * 2 + 1 AS a2, length(name) AS ln, "
    "coalesce(nickname, name) AS nm FROM users WHERE age BETWEEN 21 AND 50",
    "SELECT u.name, o.amount * 2 AS dbl FROM users u JOIN orders o "
    "ON u.id = o.user_id WHERE o.status = 'paid' AND u.age > 21",
    "SELECT u.city, count(*), sum(o.amount) FROM users u JOIN orders o "
    "ON u.id = o.user_id WHERE o.amount > 50 GROUP BY u.city",
    "SELECT id, name FROM users LIMIT 7 OFFSET 3",
    "SELECT u.name, o.oid FROM users u JOIN orders o ON u.id = o.user_id "
    "ORDER BY oid LIMIT 5",
    "SELECT score, nickname FROM users "
    "WHERE score IS NOT NULL OR nickname IS NULL",
    # computed-operand / non-constant LIKE (vectorized since PR 5)
    "SELECT name FROM users WHERE upper(name) LIKE 'USER1%'",
    "SELECT name FROM users WHERE coalesce(nickname, name) LIKE '%1%'",
]

# the fused-pipeline sweep: shapes whose stage chains exercise deferred
# masks, probe fusion, breakers, and early exit — run at several worker
# counts below, asserting rows AND charged totals against the row engine
FUSED_PIPELINE_QUERIES = [
    "SELECT id, name FROM users WHERE age > 22 AND city <> 'ny' "
    "AND id % 2 = 0",
    "SELECT age * 2 + 1 AS a2, length(name) AS ln, "
    "coalesce(nickname, name) AS nm FROM users WHERE age BETWEEN 21 AND 50",
    "SELECT u.name, o.amount * 2 AS dbl FROM users u JOIN orders o "
    "ON u.id = o.user_id WHERE o.status = 'paid' AND u.age > 21",
    "SELECT u.city, count(*), sum(o.amount) FROM users u JOIN orders o "
    "ON u.id = o.user_id WHERE o.amount > 50 GROUP BY u.city",
    "SELECT id, name FROM users LIMIT 7 OFFSET 3",
    "SELECT u.name, o.oid FROM users u JOIN orders o ON u.id = o.user_id "
    "ORDER BY oid LIMIT 5",
    "SELECT score, nickname FROM users "
    "WHERE score IS NOT NULL OR nickname IS NULL",
    "SELECT DISTINCT city FROM users WHERE age > 25",
    "SELECT count(score), sum(score) FROM users WHERE nickname IS NULL",
]


@pytest.fixture(scope="module")
def parity_db():
    db = repro.connect()
    db.execute("CREATE TABLE users (id INT UNIQUE, name TEXT, age INT, "
               "city TEXT, nickname TEXT, score FLOAT)")
    db.execute("CREATE TABLE orders (oid INT UNIQUE, user_id INT, "
               "amount FLOAT, status TEXT)")
    cities = ["sg", "ny", "ldn", "tok"]
    statuses = ["paid", "open", "void"]
    for i in range(60):
        nickname = f"'nick{i}'" if i % 3 == 0 else "NULL"
        score = "NULL" if i % 5 == 0 else f"{round(i * 1.7, 2)}"
        db.execute(f"INSERT INTO users VALUES ({i}, 'user{i}', "
                   f"{20 + i % 40}, '{cities[i % 4]}', {nickname}, {score})")
    for i in range(200):
        db.execute(f"INSERT INTO orders VALUES ({i}, {i % 60}, "
                   f"{round(float(i) * 1.5 + 1, 2)}, '{statuses[i % 3]}')")
    db.execute("CREATE INDEX idx_users_id ON users (id)")
    # a slice of the Table 1 E-commerce workload table
    from repro.workloads.avazu import AvazuGenerator, load_into_db
    load_into_db(db, AvazuGenerator(seed=0), cluster=0, count=300)
    db.execute("ANALYZE")
    return db


def _typed(rows):
    """Rows with value types attached: 1 vs 1.0 must not compare equal."""
    return [tuple((type(v), v) for v in row) for row in rows]


def _parallel_engine(db):
    """The sweep's parallel executor: tiny morsels + several workers, so
    even the 60-row tables split into many morsels."""
    return Executor(db.catalog, db.clock, engine="parallel", workers=4,
                    morsel_rows=16)


@pytest.mark.parametrize("sql", PARITY_QUERIES)
def test_query_parity(parity_db, sql):
    plan = parity_db.planner.plan_select(parse(sql))
    row_engine = Executor(parity_db.catalog, parity_db.clock, engine="row")
    batch_engine = Executor(parity_db.catalog, parity_db.clock,
                            engine="batch")
    expected = row_engine.run(plan)
    for engine in (batch_engine, _parallel_engine(parity_db)):
        got = engine.run(plan)
        assert got.columns == expected.columns
        assert len(got.rows) == len(expected.rows)
        assert _typed(got.rows) == _typed(expected.rows)
        # identical work => identical virtual time, modulo float accumulation
        assert got.virtual_seconds == pytest.approx(
            expected.virtual_seconds, rel=1e-6, abs=1e-9)


@pytest.mark.parametrize("workers", [1, 2, 4])
def test_fused_pipeline_parity_across_workers(parity_db, workers):
    """The fused-pipeline sweep at workers 1/2/4: bit-identical rows
    (values, types, order) AND charged virtual-time totals against the
    row engine, for the serial fused driver and the morsel scheduler
    alike."""
    for sql in FUSED_PIPELINE_QUERIES:
        plan = parity_db.planner.plan_select(parse(sql))
        expected = Executor(parity_db.catalog, parity_db.clock,
                            engine="row").run(plan)
        for engine in (
                Executor(parity_db.catalog, parity_db.clock,
                         engine="batch"),
                Executor(parity_db.catalog, parity_db.clock,
                         engine="parallel", workers=workers,
                         morsel_rows=16)):
            got = engine.run(plan)
            assert _typed(got.rows) == _typed(expected.rows), sql
            assert got.virtual_seconds == pytest.approx(
                expected.virtual_seconds, rel=1e-6, abs=1e-9), sql


@pytest.mark.parametrize("workers", [1, 2, 4])
def test_fused_pipeline_nan_and_null_columns(workers):
    """Fused scan→filter→project chains over NaN-bearing and NULL-bearing
    float columns: NaN comparisons reject on every engine, the total-order
    sort buckets NaN deterministically, and grouped sums stay
    bit-identical at every worker count."""
    db = repro.connect()
    db.execute("CREATE TABLE g (k TEXT, v FLOAT, x FLOAT)")
    heap = db.catalog.table("g")
    nan = float("nan")
    values = [1.0, nan, -2.5, None, 0.0, nan, 7.25, None, 3.5, -0.5]
    for i, v in enumerate(values):
        heap.insert((["p", "q"][i % 2], v, float(i)))
    # (no ANALYZE: histogram stats reject NaN); warm the buffer pool so
    # the first engine's run doesn't eat the page-miss charges alone
    db.execute("SELECT count(*) FROM g")
    queries = [
        "SELECT k, v FROM g WHERE v > 0",
        "SELECT k, v FROM g WHERE v <= 1 AND x >= 0",
        "SELECT v, x FROM g ORDER BY v DESC, x",
        "SELECT k, count(v), sum(v) FROM g GROUP BY k",
        "SELECT v FROM g WHERE v IS NOT NULL",
    ]
    for sql in queries:
        plan = db.planner.plan_select(parse(sql))
        expected = Executor(db.catalog, db.clock, engine="row").run(plan)
        for engine in (
                Executor(db.catalog, db.clock, engine="batch"),
                Executor(db.catalog, db.clock, engine="parallel",
                         workers=workers, morsel_rows=2)):
            got = engine.run(plan)
            assert len(got.rows) == len(expected.rows), sql
            assert [tuple(repr(v) for v in row) for row in got.rows] == \
                [tuple(repr(v) for v in row) for row in expected.rows], sql
            assert got.virtual_seconds == pytest.approx(
                expected.virtual_seconds, rel=1e-6, abs=1e-9), sql


@pytest.mark.parametrize("workers", [1, 2, 4])
def test_typed_storage_parity_across_workers(workers):
    """Typed columnar storage v2 shapes at workers 1/2/4: predicates over
    dictionary-coded string columns (equality both directions, <>, IN,
    LIKE — the int32 code fast paths), an all-NULL column, and GROUP BY
    keys mixing NaN and NULL.  Row engine is ground truth; the unfused
    batch pull, the fused pipeline, and the morsel-parallel engine must
    return bit-identical rows and charge identical virtual time."""
    db = repro.connect()
    db.execute("CREATE TABLE d (i INT, tag TEXT, hole TEXT, v FLOAT, "
               "w FLOAT)")
    heap = db.catalog.table("d")
    nan = float("nan")
    for i in range(90):
        v = [1.5, nan, None, -2.25, 0.0][i % 5]
        heap.insert((i, f"tag-{i % 7}", None, v, float(i % 13)))
    # no ANALYZE (histogram stats reject NaN); warm the buffer pool so
    # the first engine doesn't eat the page-miss charges alone
    db.execute("SELECT count(*) FROM d")
    queries = [
        # dictionary-code comparisons, literal on either side
        "SELECT i, tag FROM d WHERE tag = 'tag-3'",
        "SELECT i FROM d WHERE 'tag-5' = tag",
        "SELECT i, tag FROM d WHERE tag <> 'tag-1'",
        "SELECT i FROM d WHERE tag IN ('tag-2', 'tag-6', 'absent')",
        "SELECT i, tag FROM d WHERE tag LIKE 'tag-%'",
        "SELECT i FROM d WHERE tag LIKE '%-4'",
        "SELECT tag FROM d WHERE tag LIKE 'tag_2'",
        # the all-NULL column: every predicate family over pure NULLs
        "SELECT i FROM d WHERE hole = 'x'",
        "SELECT i FROM d WHERE hole IS NULL",
        "SELECT i FROM d WHERE hole IS NOT NULL",
        "SELECT i FROM d WHERE hole LIKE '%'",
        "SELECT hole, count(*) FROM d GROUP BY hole",
        "SELECT count(hole) FROM d",
        # GROUP BY with NaN and NULL keys interleaved
        "SELECT v, count(*), sum(w) FROM d GROUP BY v",
        "SELECT tag, count(v), sum(v) FROM d GROUP BY tag",
        "SELECT tag, hole, count(*) FROM d GROUP BY tag, hole",
    ]
    for sql in queries:
        plan = db.planner.plan_select(parse(sql))
        expected = Executor(db.catalog, db.clock, engine="row").run(plan)
        for engine in (
                Executor(db.catalog, db.clock, engine="batch",
                         fused=False),
                Executor(db.catalog, db.clock, engine="batch"),
                Executor(db.catalog, db.clock, engine="parallel",
                         workers=workers, morsel_rows=16)):
            got = engine.run(plan)
            assert got.columns == expected.columns, sql
            # repr keeps NaN comparable and 1 vs 1.0 distinct
            assert [tuple((type(v), repr(v)) for v in row)
                    for row in got.rows] == \
                [tuple((type(v), repr(v)) for v in row)
                 for row in expected.rows], sql
            assert got.virtual_seconds == pytest.approx(
                expected.virtual_seconds, rel=1e-6, abs=1e-9), sql


def test_candidate_plans_parity(parity_db):
    """Every candidate plan agrees across engines, not just the chosen one."""
    sql = ("SELECT count(*) FROM users u JOIN orders o ON u.id = o.user_id "
           "WHERE u.age > 30 AND o.amount < 200")
    candidates = parity_db.planner.candidate_plans(parse(sql), 12)
    assert len(candidates) >= 2
    row_engine = Executor(parity_db.catalog, parity_db.clock, engine="row")
    batch_engine = Executor(parity_db.catalog, parity_db.clock,
                            engine="batch")
    for candidate in candidates:
        expected = row_engine.run(candidate).rows
        assert batch_engine.run(candidate).rows == expected
        assert _parallel_engine(parity_db).run(candidate).rows == expected


def test_rows_out_accounting_parity(parity_db):
    plan = parity_db.planner.plan_select(
        parse("SELECT * FROM users WHERE age >= 30"))
    row_engine = Executor(parity_db.catalog, parity_db.clock, engine="row")
    op_row = row_engine.build(plan)
    rows = list(row_engine.iter_rows(op_row))
    for engine in (Executor(parity_db.catalog, parity_db.clock,
                            engine="batch"),
                   _parallel_engine(parity_db)):
        op = engine.build(plan)
        produced = list(engine.iter_rows(op))
        assert len(rows) == len(produced)
        assert op_row.rows_out == op.rows_out


def test_division_by_zero_parity(parity_db):
    from repro.common.errors import ExecutionError
    sql = "SELECT * FROM users WHERE age / (age - age) > 1"
    plan = parity_db.planner.plan_select(parse(sql))
    for engine in ("row", "batch", "parallel"):
        executor = Executor(parity_db.catalog, parity_db.clock, engine=engine)
        with pytest.raises(ExecutionError):
            executor.run(plan)


def test_guarded_division_short_circuit_parity():
    """A zero divisor behind an AND guard must not raise in either engine:
    vector evaluation defers the error decision to row semantics."""
    db = repro.connect()
    db.execute("CREATE TABLE d (id INT, x INT)")
    db.execute("INSERT INTO d VALUES (1, 0)")
    db.execute("INSERT INTO d VALUES (2, 5)")
    db.execute("ANALYZE")
    plan = db.planner.plan_select(
        parse("SELECT id FROM d WHERE x <> 0 AND 10 / x > 1"))
    for engine in ("row", "batch", "parallel"):
        result = Executor(db.catalog, db.clock, engine=engine).run(plan)
        assert result.rows == [(2,)]


@pytest.mark.parametrize("base", [2 ** 53, 2 ** 60])
def test_big_integer_precision_parity(base):
    """Integers at and beyond 2^53 must not be collapsed by the float64
    view — including the boundary case where base+1 rounds down onto an
    exactly-representable base, and literals that float64 cannot hold."""
    db = repro.connect()
    db.execute("CREATE TABLE big (id INT, x INT)")
    db.execute(f"INSERT INTO big VALUES (1, {base + 1})")
    db.execute(f"INSERT INTO big VALUES (2, {base})")
    for target, expect in ((base, [(2,)]), (base + 1, [(1,)])):
        plan = db.planner.plan_select(
            parse(f"SELECT id FROM big WHERE x = {target}"))
        for engine in ("row", "batch", "parallel"):
            result = Executor(db.catalog, db.clock, engine=engine).run(plan)
            assert result.rows == expect


def test_train_filter_skips_null_target_rows():
    """The WITH predicate must never evaluate rows whose target is NULL
    (the row engine skipped them first; a predicate that errors on such a
    row must not break training)."""
    db = repro.connect()
    db.execute("CREATE TABLE p (a FLOAT, b FLOAT, y FLOAT)")
    db.execute("INSERT INTO p VALUES (1.0, 0.0, NULL)")  # would divide by 0
    for i in range(20):
        db.execute(f"INSERT INTO p VALUES ({i}.5, {i + 1}.0, {i * 0.1})")
    result = db.execute("PREDICT VALUE OF y FROM p TRAIN ON a, b "
                        "WITH a / b > 0")
    assert len(result.rows) == 21


def test_filtered_limit_cost_bounded():
    """LIMIT over a filtered scan may overshoot the row engine's virtual
    time only by the pushed-down batch (offset+limit+1 scanned rows), not
    by a full default-sized block.  (It may also legitimately stop earlier:
    the row engine scans ahead for the extra row that triggers its stop.)"""
    from repro.common.simtime import CostModel
    db = repro.connect()
    db.execute("CREATE TABLE f (id INT, v INT)")
    heap = db.catalog.table("f")
    for i in range(5000):
        heap.insert((i, i % 10))
    db.execute("ANALYZE")
    plan = db.planner.plan_select(
        parse("SELECT id FROM f WHERE v = 3 LIMIT 2"))
    row = Executor(db.catalog, db.clock, engine="row").run(plan)
    batch = Executor(db.catalog, db.clock, engine="batch").run(plan)
    assert batch.rows == row.rows
    bound = 3 * (CostModel.TUPLE_CPU + CostModel.EVAL_PREDICATE)
    assert batch.virtual_seconds <= row.virtual_seconds + bound


def test_nan_group_key_parity():
    """NaN group keys (insertable via the heap API) must not corrupt
    grouped results: both engines group NaN by object identity."""
    db = repro.connect()
    db.execute("CREATE TABLE g (k FLOAT, v INT)")
    heap = db.catalog.table("g")
    nan = float("nan")
    heap.insert((1.0, 10))
    heap.insert((nan, 20))
    heap.insert((1.0, 30))
    heap.insert((nan, 40))  # (no ANALYZE: histogram stats reject NaN)
    plan = db.planner.plan_select(
        parse("SELECT k, count(*), sum(v) FROM g GROUP BY k"))
    row = Executor(db.catalog, db.clock, engine="row").run(plan)
    for engine in (Executor(db.catalog, db.clock, engine="batch"),
                   Executor(db.catalog, db.clock, engine="parallel",
                            workers=2, morsel_rows=2)):
        got = engine.run(plan)
        assert len(got.rows) == len(row.rows)
        assert [(repr(k), c, s) for k, c, s in got.rows] \
            == [(repr(k), c, s) for k, c, s in row.rows]


def test_high_cardinality_group_by_parity():
    """GROUP BY over a near-unique column crosses the mask-partition
    cutoff mid-query; both partition strategies must agree."""
    db = repro.connect()
    db.execute("CREATE TABLE hc (k INT, v FLOAT)")
    heap = db.catalog.table("hc")
    for i in range(3000):
        heap.insert((i % 2000, float(i)))
    db.execute("ANALYZE")
    plan = db.planner.plan_select(
        parse("SELECT k, count(*), sum(v) FROM hc GROUP BY k"))
    row = Executor(db.catalog, db.clock, engine="row").run(plan)
    batch = Executor(db.catalog, db.clock, engine="batch").run(plan)
    parallel = Executor(db.catalog, db.clock, engine="parallel").run(plan)
    assert _typed(batch.rows) == _typed(row.rows)
    assert _typed(parallel.rows) == _typed(row.rows)


# representative sweep shapes for the sharded-table parity matrix: every
# operator family plus NULL-heavy columns and fallback expression forms
SHARDED_PARITY_QUERIES = [
    "SELECT * FROM users",
    "SELECT id, name FROM users WHERE age >= 30",
    "SELECT * FROM users WHERE name LIKE 'user1%'",
    "SELECT * FROM users WHERE nickname IS NULL",
    "SELECT count(*) FROM users",
    "SELECT avg(age), min(age), max(age), sum(age) FROM users",
    "SELECT city, count(*), sum(age), avg(age) FROM users "
    "GROUP BY city ORDER BY city",
    "SELECT city, count(score), sum(score) FROM users GROUP BY city",
    "SELECT * FROM users ORDER BY city DESC, age DESC",
    "SELECT * FROM users ORDER BY score DESC, id",
    "SELECT age FROM users ORDER BY age DESC LIMIT 3 OFFSET 1",
    "SELECT DISTINCT city FROM users",
    "SELECT count(*) FROM users u JOIN orders o ON u.id = o.user_id",
    "SELECT u.name, o.amount FROM users u JOIN orders o "
    "ON u.id = o.user_id WHERE u.age < 25 AND o.amount > 100",
    "SELECT u.city, count(*), sum(o.amount) FROM users u JOIN orders o "
    "ON u.id = o.user_id WHERE o.amount > 50 GROUP BY u.city",
    "SELECT status, count(*) FROM orders GROUP BY status",
]


@pytest.fixture(scope="module")
def sharded_parity_db():
    """The parity fixture's tables, hash-partitioned across 3 shards —
    deliberately not a multiple of any node count the sweep uses, so
    shard->node placement is always uneven."""
    db = repro.connect(shards=3)
    db.execute("CREATE TABLE users (id INT UNIQUE, name TEXT, age INT, "
               "city TEXT, nickname TEXT, score FLOAT)")
    db.execute("CREATE TABLE orders (oid INT UNIQUE, user_id INT, "
               "amount FLOAT, status TEXT)")
    cities = ["sg", "ny", "ldn", "tok"]
    statuses = ["paid", "open", "void"]
    for i in range(60):
        nickname = f"'nick{i}'" if i % 3 == 0 else "NULL"
        score = "NULL" if i % 5 == 0 else f"{round(i * 1.7, 2)}"
        db.execute(f"INSERT INTO users VALUES ({i}, 'user{i}', "
                   f"{20 + i % 40}, '{cities[i % 4]}', {nickname}, {score})")
    for i in range(200):
        db.execute(f"INSERT INTO orders VALUES ({i}, {i % 60}, "
                   f"{round(float(i) * 1.5 + 1, 2)}, '{statuses[i % 3]}')")
    db.execute("ANALYZE")
    return db


@pytest.mark.parametrize("nodes", [1, 2, 4])
@pytest.mark.parametrize("workers", [1, 2, 4])
def test_sharded_distributed_parity(sharded_parity_db, nodes, workers):
    """The distributed engine over hash-partitioned tables at every
    node x worker combination: bit-identical rows against the batch
    engine, and total charged time equal up to the network overhead
    (zero at one node)."""
    db = sharded_parity_db
    for sql in SHARDED_PARITY_QUERIES:
        plan = db.planner.plan_select(parse(sql))
        expected = Executor(db.catalog, db.clock, engine="batch").run(plan)
        got = Executor(db.catalog, db.clock, engine="distributed",
                       nodes=nodes, workers=workers,
                       morsel_rows=16).run(plan)
        assert got.columns == expected.columns, sql
        assert _typed(got.rows) == _typed(expected.rows), \
            f"{sql} nodes={nodes} workers={workers}"
        stats = got.extra["distributed"]
        network = stats["exchange_seconds"]
        if nodes == 1:
            assert network == 0.0, sql
        assert got.virtual_seconds - network == pytest.approx(
            expected.virtual_seconds, rel=1e-6, abs=1e-9), sql


def test_sharded_range_partition_distributed_parity():
    """Range partitioning: boundary routing must not change results or
    charged compute at any node count."""
    from repro.storage.schema import Column, DataType, TableSchema
    db = repro.connect()
    schema = TableSchema("ev", [Column("ts", DataType.INT),
                                Column("grp", DataType.TEXT),
                                Column("val", DataType.FLOAT)])
    table = db.catalog.create_table(schema, partition="ts",
                                    partition_kind="range",
                                    boundaries=[80, 160, 240], shards=4)
    for i in range(320):
        table.insert((i, f"g{i % 9}", round(i * 0.25, 2)))
    queries = [
        "SELECT grp, count(*), sum(val) FROM ev GROUP BY grp ORDER BY grp",
        "SELECT ts, val FROM ev WHERE ts BETWEEN 70 AND 170 ORDER BY ts",
        "SELECT count(*) FROM ev WHERE val > 40",
    ]
    for sql in queries:
        plan = db.planner.plan_select(parse(sql))
        expected = Executor(db.catalog, db.clock, engine="batch").run(plan)
        for nodes in (1, 2, 4):
            got = Executor(db.catalog, db.clock, engine="distributed",
                           nodes=nodes, workers=2).run(plan)
            assert _typed(got.rows) == _typed(expected.rows), \
                f"{sql} nodes={nodes}"


@pytest.mark.parametrize("nodes", [1, 2, 4])
def test_sharded_nan_null_shuffle_keys(nodes):
    """NaN and NULL values in the shuffle key: the stable-hash
    repartition must keep them distinct and grouped identically to the
    single-node engines."""
    db = repro.connect(shards=4)
    db.execute("CREATE TABLE g (k FLOAT, tag TEXT, v FLOAT)")
    table = db.catalog.table("g")
    nan = float("nan")
    keys = [1.0, nan, None, -2.5, 0.0, nan, None, 3.25]
    for i in range(160):
        table.insert((keys[i % len(keys)], f"t{i % 5}", float(i)))
    queries = [
        "SELECT k, count(*), sum(v) FROM g GROUP BY k",
        "SELECT tag, count(k), sum(k) FROM g GROUP BY tag ORDER BY tag",
        "SELECT k, v FROM g ORDER BY k DESC, v",
    ]
    for sql in queries:
        plan = db.planner.plan_select(parse(sql))
        expected = Executor(db.catalog, db.clock, engine="batch").run(plan)
        got = Executor(db.catalog, db.clock, engine="distributed",
                       nodes=nodes, workers=2, morsel_rows=16).run(plan)
        assert [tuple(repr(v) for v in row) for row in got.rows] == \
            [tuple(repr(v) for v in row) for row in expected.rows], sql


class TestTrainingDataParity:
    """The columnar AI feed must match the legacy per-row materialization."""

    def test_training_set_matches_row_loop(self, parity_db):
        from repro.ai.loader import table_training_set
        heap = parity_db.catalog.table("orders")
        schema = heap.schema
        data = table_training_set(heap, ["user_id", "amount"], "amount")
        uidx, aidx = schema.index_of("user_id"), schema.index_of("amount")
        expected_rows, expected_targets = [], []
        for _, row in heap.scan():
            if row[aidx] is None:
                continue
            expected_rows.append((row[uidx], row[aidx]))
            expected_targets.append(float(row[aidx]))
        assert data.rows() == expected_rows
        assert np.array_equal(data.targets, np.array(expected_targets))

    def test_hasher_columns_match_rows(self, parity_db):
        from repro.ai.armnet import FeatureHasher
        heap = parity_db.catalog.table("users")
        rows = [(row[2], row[3], row[4]) for _, row in heap.scan()]
        columns = [np.array([r[j] for r in rows], dtype=object)
                   for j in range(3)]
        hasher = FeatureHasher(field_count=3)
        assert np.array_equal(hasher.transform(rows),
                              hasher.transform_columns(columns))

    def test_streaming_loader_columnar_batches_match(self, parity_db):
        from repro.ai.armnet import FeatureHasher
        from repro.ai.loader import ColumnTrainingSet, StreamingDataLoader
        heap = parity_db.catalog.table("orders")
        rows = [(row[1], row[2]) for _, row in heap.scan()]
        targets = [float(row[2]) for _, row in heap.scan()]
        hasher = FeatureHasher(field_count=2)
        columnar = ColumnTrainingSet(
            [np.array([r[0] for r in rows], dtype=object),
             np.array([r[1] for r in rows], dtype=object)],
            np.array(targets))
        row_batches = list(StreamingDataLoader(rows, targets, hasher,
                                               batch_size=64))
        col_batches = list(StreamingDataLoader(columnar, columnar.targets,
                                               hasher, batch_size=64))
        assert len(row_batches) == len(col_batches)
        for (ids_r, t_r), (ids_c, t_c) in zip(row_batches, col_batches):
            assert np.array_equal(ids_r, ids_c)
            assert np.array_equal(t_r, t_c)

    def test_train_losses_identical_row_vs_columnar(self, parity_db):
        """End-to-end: identical batches => identical gradient trajectory."""
        from repro.ai.engine import AIEngine
        from repro.ai.loader import table_training_set
        from repro.ai.tasks import TrainTask
        from repro.common.simtime import SimClock
        heap = parity_db.catalog.table("orders")
        schema = heap.schema
        data = table_training_set(heap, ["user_id", "amount"], "amount")
        aidx = schema.index_of("amount")
        uidx = schema.index_of("user_id")
        rows = [(row[uidx], row[aidx]) for _, row in heap.scan()
                if row[aidx] is not None]
        targets = [float(row[aidx]) for _, row in heap.scan()
                   if row[aidx] is not None]

        def run(train_rows, train_targets):
            engine = AIEngine(clock=SimClock())
            task = TrainTask(model_name="parity", task_type="regression",
                             field_count=2, epochs=2, batch_size=64)
            return engine.train(task, train_rows, train_targets)

        result_rows = run(rows, targets)
        result_cols = run(data, data.targets)
        assert result_rows.losses == result_cols.losses
        assert (result_rows.samples_processed
                == result_cols.samples_processed)
