"""Docs must not reference files that do not exist.

Runs the same checker CI runs (`tools/check_links.py`) so a module rename
that breaks a docs pointer fails tier-1 locally, not just in the workflow.
"""

from __future__ import annotations

import subprocess
import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent


def test_docs_have_no_dead_links():
    proc = subprocess.run(
        [sys.executable, str(ROOT / "tools" / "check_links.py")],
        capture_output=True, text=True)
    assert proc.returncode == 0, (
        f"dead documentation references:\n{proc.stderr}")
