"""Tests for expression evaluation and query execution correctness."""

import itertools

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro
from repro.common.errors import BindError, ExecutionError
from repro.exec.expr import RowLayout, compile_expr, to_bool
from repro.exec.measure import measure_plan_latency
from repro.sql import ast, parse


class TestRowLayout:
    def test_resolve_qualified(self):
        layout = RowLayout([("a", "x"), ("b", "x")])
        assert layout.resolve("x", "a") == 0
        assert layout.resolve("x", "b") == 1

    def test_ambiguous_unqualified(self):
        layout = RowLayout([("a", "x"), ("b", "x")])
        with pytest.raises(BindError):
            layout.resolve("x")

    def test_unknown_column(self):
        layout = RowLayout([("a", "x")])
        with pytest.raises(BindError):
            layout.resolve("zzz")

    def test_concat(self):
        layout = RowLayout([("a", "x")]).concat(RowLayout([("b", "y")]))
        assert layout.resolve("y") == 1


def _eval(expr_sql: str, layout=None, row=()):
    layout = layout if layout is not None else RowLayout([])
    stmt = parse(f"SELECT 1 FROM t WHERE {expr_sql}")
    return compile_expr(stmt.where, layout)(row)


class TestExpressionEvaluation:
    def test_arithmetic(self):
        assert _eval("1 + 2 * 3 = 7")
        assert _eval("10 / 4 = 2.5")
        assert _eval("10 % 3 = 1")

    def test_division_by_zero(self):
        with pytest.raises(ExecutionError):
            _eval("1 / 0 = 1")

    def test_three_valued_logic_null_comparison(self):
        assert _eval("NULL = 1") is None
        assert _eval("NULL <> 1") is None

    def test_and_or_kleene(self):
        assert _eval("FALSE AND NULL") is False     # short circuit
        assert _eval("TRUE OR NULL") is True
        assert _eval("TRUE AND NULL") is None
        assert _eval("FALSE OR NULL") is None

    def test_not_null(self):
        assert _eval("NOT NULL") is None

    def test_is_null(self):
        assert _eval("NULL IS NULL") is True
        assert _eval("1 IS NOT NULL") is True

    def test_in_list(self):
        assert _eval("2 IN (1, 2, 3)") is True
        assert _eval("9 NOT IN (1, 2)") is True
        assert _eval("NULL IN (1)") is None

    def test_between(self):
        assert _eval("2 BETWEEN 1 AND 3") is True
        assert _eval("0 NOT BETWEEN 1 AND 3") is True

    def test_like(self):
        assert _eval("'hello' LIKE 'he%'") is True
        assert _eval("'hello' LIKE 'h_llo'") is True
        assert _eval("'hello' LIKE 'x%'") is False

    def test_like_escapes_regex_chars(self):
        assert _eval("'a.c' LIKE 'a.c'") is True
        assert _eval("'abc' LIKE 'a.c'") is False  # '.' is literal

    def test_scalar_functions(self):
        assert _eval("abs(-3) = 3")
        assert _eval("lower('AB') = 'ab'")
        assert _eval("length('abc') = 3")
        assert _eval("coalesce(NULL, NULL, 5) = 5")

    def test_unknown_function(self):
        with pytest.raises(BindError):
            _eval("nosuchfn(1) = 1")

    def test_column_reference(self):
        layout = RowLayout([("t", "a")])
        stmt = parse("SELECT 1 FROM t WHERE a * 2 = 10")
        assert compile_expr(stmt.where, layout)((5,)) is True

    def test_to_bool(self):
        assert to_bool(None) is False
        assert to_bool(True) is True
        assert to_bool(0) is False


class TestQueryExecution:
    def test_count_star(self, users_orders_db):
        assert users_orders_db.execute(
            "SELECT count(*) FROM users").scalar() == 60

    def test_filter_correctness(self, users_orders_db):
        result = users_orders_db.execute(
            "SELECT count(*) FROM users WHERE age >= 30")
        expected = sum(1 for i in range(60) if 20 + i % 40 >= 30)
        assert result.scalar() == expected

    def test_projection_names(self, users_orders_db):
        result = users_orders_db.execute(
            "SELECT name AS who, age FROM users LIMIT 1")
        assert result.columns == ["who", "age"]

    def test_join_matches_bruteforce(self, users_orders_db):
        result = users_orders_db.execute(
            "SELECT count(*) FROM users u JOIN orders o "
            "ON u.id = o.user_id WHERE u.age < 30")
        users = [(i, 20 + i % 40) for i in range(60)]
        orders = [(i, i % 60) for i in range(200)]
        expected = sum(1 for uid, age in users for _, ouid in orders
                       if uid == ouid and age < 30)
        assert result.scalar() == expected

    def test_group_by_aggregates(self, users_orders_db):
        result = users_orders_db.execute(
            "SELECT status, count(*), sum(amount) FROM orders "
            "GROUP BY status ORDER BY status")
        assert len(result.rows) == 3
        assert sum(row[1] for row in result.rows) == 200

    def test_avg_min_max(self, users_orders_db):
        result = users_orders_db.execute(
            "SELECT avg(age), min(age), max(age) FROM users")
        ages = [20 + i % 40 for i in range(60)]
        avg, lo, hi = result.rows[0]
        assert avg == pytest.approx(sum(ages) / len(ages))
        assert (lo, hi) == (min(ages), max(ages))

    def test_aggregate_arithmetic(self, users_orders_db):
        result = users_orders_db.execute(
            "SELECT max(age) - min(age) FROM users")
        assert result.scalar() == 39

    def test_order_by_desc_limit_offset(self, users_orders_db):
        result = users_orders_db.execute(
            "SELECT age FROM users ORDER BY age DESC LIMIT 3 OFFSET 1")
        ages = sorted((20 + i % 40 for i in range(60)), reverse=True)
        assert result.column("age") == ages[1:4]

    def test_distinct(self, users_orders_db):
        result = users_orders_db.execute(
            "SELECT DISTINCT city FROM users")
        assert len(result.rows) == 4

    def test_index_point_lookup(self, users_orders_db):
        result = users_orders_db.execute("SELECT name FROM users WHERE id = 7")
        assert result.rows == [("user7",)]

    def test_empty_result(self, users_orders_db):
        result = users_orders_db.execute(
            "SELECT * FROM users WHERE age > 1000")
        assert result.rows == []

    def test_count_on_empty_is_zero(self, users_orders_db):
        result = users_orders_db.execute(
            "SELECT count(*) FROM users WHERE age > 1000")
        assert result.scalar() == 0

    def test_tableless_select(self, users_orders_db):
        assert users_orders_db.execute("SELECT 2 + 3").scalar() == 5

    def test_virtual_time_positive(self, users_orders_db):
        result = users_orders_db.execute("SELECT count(*) FROM orders")
        assert result.virtual_seconds > 0

    def test_three_way_join(self, users_orders_db):
        users_orders_db.execute(
            "CREATE TABLE cities (code TEXT UNIQUE, country TEXT)")
        for code, country in [("sg", "SG"), ("ny", "US"), ("ldn", "UK"),
                              ("tok", "JP")]:
            users_orders_db.execute(
                f"INSERT INTO cities VALUES ('{code}', '{country}')")
        users_orders_db.execute("ANALYZE")
        result = users_orders_db.execute(
            "SELECT count(*) FROM users u JOIN orders o ON u.id = o.user_id "
            "JOIN cities c ON u.city = c.code WHERE c.country = 'US'")
        expected = sum(1 for i in range(200) if (i % 60) % 4 == 1)
        assert result.scalar() == expected


class TestCandidatePlansAgree:
    """Every candidate plan for a query must produce the same answer."""

    @pytest.mark.parametrize("sql", [
        "SELECT count(*) FROM users u JOIN orders o ON u.id = o.user_id",
        "SELECT count(*) FROM users u JOIN orders o ON u.id = o.user_id "
        "WHERE u.age > 30 AND o.amount < 200",
    ])
    def test_all_candidates_same_result(self, users_orders_db, sql):
        select = parse(sql)
        candidates = users_orders_db.planner.candidate_plans(select, 12)
        assert len(candidates) >= 2
        results = set()
        for candidate in candidates:
            result = users_orders_db.executor.run(candidate)
            results.add(result.rows[0][0])
        assert len(results) == 1


class TestMeasurePlanLatency:
    def test_uncapped(self, users_orders_db):
        select = parse("SELECT count(*) FROM users")
        node = users_orders_db.planner.plan_select(select)
        measured = measure_plan_latency(users_orders_db.executor,
                                        users_orders_db.clock, node)
        assert not measured.censored
        assert measured.latency > 0

    def test_cap_censors_pathological_plan(self, users_orders_db):
        select = parse("SELECT count(*) FROM users, orders")  # cross join
        candidates = users_orders_db.planner.candidate_plans(select, 8)
        worst = max(candidates, key=lambda c: c.est_cost)
        measured = measure_plan_latency(users_orders_db.executor,
                                        users_orders_db.clock, worst,
                                        cap_virtual=1e-6)
        assert measured.censored
        assert measured.latency == pytest.approx(1e-6)


@given(st.lists(st.integers(0, 20), min_size=0, max_size=60),
       st.lists(st.integers(0, 20), min_size=0, max_size=60))
@settings(max_examples=15, deadline=None)
def test_join_equivalent_to_bruteforce_property(left_keys, right_keys):
    """Hash-join output multiplicity equals the nested-loop definition."""
    db = repro.connect()
    db.execute("CREATE TABLE l (k INT)")
    db.execute("CREATE TABLE r (k INT)")
    for k in left_keys:
        db.execute(f"INSERT INTO l VALUES ({k})")
    for k in right_keys:
        db.execute(f"INSERT INTO r VALUES ({k})")
    db.execute("ANALYZE")
    got = db.execute("SELECT count(*) FROM l JOIN r ON l.k = r.k").scalar()
    expected = sum(1 for a in left_keys for b in right_keys if a == b)
    assert got == expected
