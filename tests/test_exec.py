"""Tests for expression evaluation and query execution correctness."""

import itertools

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro
from repro.common.errors import BindError, ExecutionError
from repro.exec.expr import RowLayout, compile_expr, to_bool
from repro.exec.measure import measure_plan_latency
from repro.sql import ast, parse


class TestRowLayout:
    def test_resolve_qualified(self):
        layout = RowLayout([("a", "x"), ("b", "x")])
        assert layout.resolve("x", "a") == 0
        assert layout.resolve("x", "b") == 1

    def test_ambiguous_unqualified(self):
        layout = RowLayout([("a", "x"), ("b", "x")])
        with pytest.raises(BindError):
            layout.resolve("x")

    def test_unknown_column(self):
        layout = RowLayout([("a", "x")])
        with pytest.raises(BindError):
            layout.resolve("zzz")

    def test_concat(self):
        layout = RowLayout([("a", "x")]).concat(RowLayout([("b", "y")]))
        assert layout.resolve("y") == 1


def _eval(expr_sql: str, layout=None, row=()):
    layout = layout if layout is not None else RowLayout([])
    stmt = parse(f"SELECT 1 FROM t WHERE {expr_sql}")
    return compile_expr(stmt.where, layout)(row)


class TestExpressionEvaluation:
    def test_arithmetic(self):
        assert _eval("1 + 2 * 3 = 7")
        assert _eval("10 / 4 = 2.5")
        assert _eval("10 % 3 = 1")

    def test_division_by_zero(self):
        with pytest.raises(ExecutionError):
            _eval("1 / 0 = 1")

    def test_three_valued_logic_null_comparison(self):
        assert _eval("NULL = 1") is None
        assert _eval("NULL <> 1") is None

    def test_and_or_kleene(self):
        assert _eval("FALSE AND NULL") is False     # short circuit
        assert _eval("TRUE OR NULL") is True
        assert _eval("TRUE AND NULL") is None
        assert _eval("FALSE OR NULL") is None

    def test_not_null(self):
        assert _eval("NOT NULL") is None

    def test_is_null(self):
        assert _eval("NULL IS NULL") is True
        assert _eval("1 IS NOT NULL") is True

    def test_in_list(self):
        assert _eval("2 IN (1, 2, 3)") is True
        assert _eval("9 NOT IN (1, 2)") is True
        assert _eval("NULL IN (1)") is None

    def test_between(self):
        assert _eval("2 BETWEEN 1 AND 3") is True
        assert _eval("0 NOT BETWEEN 1 AND 3") is True

    def test_like(self):
        assert _eval("'hello' LIKE 'he%'") is True
        assert _eval("'hello' LIKE 'h_llo'") is True
        assert _eval("'hello' LIKE 'x%'") is False

    def test_like_escapes_regex_chars(self):
        assert _eval("'a.c' LIKE 'a.c'") is True
        assert _eval("'abc' LIKE 'a.c'") is False  # '.' is literal

    def test_scalar_functions(self):
        assert _eval("abs(-3) = 3")
        assert _eval("lower('AB') = 'ab'")
        assert _eval("length('abc') = 3")
        assert _eval("coalesce(NULL, NULL, 5) = 5")

    def test_unknown_function(self):
        with pytest.raises(BindError):
            _eval("nosuchfn(1) = 1")

    def test_column_reference(self):
        layout = RowLayout([("t", "a")])
        stmt = parse("SELECT 1 FROM t WHERE a * 2 = 10")
        assert compile_expr(stmt.where, layout)((5,)) is True

    def test_to_bool(self):
        assert to_bool(None) is False
        assert to_bool(True) is True
        assert to_bool(0) is False


def _vector_of(predicate_sql: str, layout: RowLayout):
    from repro.exec.expr import compile_expr_vector
    stmt = parse(f"SELECT 1 FROM t WHERE {predicate_sql}")
    return stmt.where, compile_expr_vector(stmt.where, layout)


def _block(layout: RowLayout, rows):
    from repro.exec.batch import RowBlock
    return RowBlock.from_rows(layout, rows)


class TestVectorizedScalarFunctions:
    """The vectorizer must lower the scalar-function predicates that used
    to force whole-block row fallback — and still defer to the row
    evaluator wherever runtime values could make the two paths diverge."""

    LAYOUT = RowLayout([("t", "name"), ("t", "age"), ("t", "nick")])

    def _mask(self, predicate_sql: str, rows):
        from repro.exec.expr import compile_predicate_batch
        stmt = parse(f"SELECT 1 FROM t WHERE {predicate_sql}")
        evaluate = compile_predicate_batch(stmt.where, self.LAYOUT)
        return list(evaluate(_block(self.LAYOUT, rows)))

    def test_string_functions_lower(self):
        for predicate in ("lower(name) = 'bob'", "upper(name) = 'BOB'",
                          "length(name) > 2"):
            _, vector = _vector_of(predicate, self.LAYOUT)
            assert vector is not None, predicate

    def test_numeric_functions_lower(self):
        for predicate in ("abs(age) > 1", "round(age) = 2",
                          "floor(age) = 2", "ceil(age) = 2",
                          "coalesce(age, 0) > 1"):
            _, vector = _vector_of(predicate, self.LAYOUT)
            assert vector is not None, predicate

    def test_declined_forms_stay_row_fallback(self):
        # 2-arg round (numpy's scaled rounding can disagree on ties) and
        # wrong arity must leave error/tie semantics to the row evaluator
        for predicate in ("round(age, 2) = 1.5", "abs(age, age) = 1"):
            _, vector = _vector_of(predicate, self.LAYOUT)
            assert vector is None, predicate

    def test_masks_match_row_semantics(self):
        rows = [("Bob", 2, None), ("bob", -3, "x"), ("ann", None, "yy"),
                (None, 5, "zzz")]
        assert self._mask("lower(name) = 'bob'", rows) == [
            True, True, False, False]
        assert self._mask("length(coalesce(nick, name)) >= 2", rows) == [
            True, False, True, True]
        assert self._mask("abs(age) = 3", rows) == [False, True, False,
                                                    False]
        assert self._mask("round(age) BETWEEN 2 AND 5", rows) == [
            True, False, False, True]

    def test_round_half_even_matches_python(self):
        layout = RowLayout([("t", "x")])
        from repro.exec.expr import compile_predicate_batch
        stmt = parse("SELECT 1 FROM t WHERE round(x) = 2")
        evaluate = compile_predicate_batch(stmt.where, layout)
        rows = [(0.5,), (1.5,), (2.5,), (3.5,), (-2.5,)]
        got = list(evaluate(_block(layout, rows)))
        assert got == [round(x) == 2 for (x,) in rows]

    def test_string_function_on_numbers_falls_back_to_row_error(self):
        # lower(5) raises in the row engine; the vector path must not
        # swallow or reorder that
        db = repro.connect()
        db.execute("CREATE TABLE fx (a INT)")
        db.execute("INSERT INTO fx VALUES (5)")
        with pytest.raises(Exception):
            db.execute("SELECT * FROM fx WHERE lower(a) = 'x'")

    def test_mixed_type_coalesce_defers_to_rows(self):
        # INT column coalesced with a TEXT default: dtypes mix at runtime,
        # so the vector plan must fall back, not guess
        rows = [("a", None, None), ("b", 3, "n")]
        got = self._mask("coalesce(age, name) = 'a'", rows)
        assert got == [True, False]


class TestCompiledExpressionCache:
    def test_row_compile_cached_by_node_identity(self):
        from repro.exec.expr import compile_expr_cached
        layout = RowLayout([("t", "a")])
        stmt = parse("SELECT 1 FROM t WHERE a > 1")
        first = compile_expr_cached(stmt.where, layout)
        second = compile_expr_cached(stmt.where, layout)
        assert first is second

    def test_distinct_nodes_not_shared(self):
        from repro.exec.expr import compile_expr_cached
        layout = RowLayout([("t", "a")])
        one = parse("SELECT 1 FROM t WHERE a > 1").where
        two = parse("SELECT 1 FROM t WHERE a > 1").where
        assert compile_expr_cached(one, layout) is not \
            compile_expr_cached(two, layout)

    def test_layout_shape_part_of_key(self):
        from repro.exec.expr import compile_expr_cached
        stmt = parse("SELECT 1 FROM t WHERE a > 1")
        narrow = compile_expr_cached(stmt.where, RowLayout([("t", "a")]))
        wide = compile_expr_cached(stmt.where,
                                   RowLayout([("t", "x"), ("t", "a")]))
        assert narrow((5,)) is True
        assert wide((0, 5)) is True  # resolved against the wider layout

    def test_predicate_batch_cached_including_vector_funcs(self):
        from repro.exec.expr import compile_predicate_batch
        layout = RowLayout([("t", "name")])
        stmt = parse("SELECT 1 FROM t WHERE lower(name) = 'x'")
        first = compile_predicate_batch(stmt.where, layout)
        second = compile_predicate_batch(stmt.where, layout)
        assert first is second

    def test_cache_clears_at_capacity_instead_of_growing(self):
        from repro.exec import expr as expr_module
        layout = RowLayout([("t", "a")])
        keep = []  # pin AST nodes so ids cannot be recycled mid-test
        for _ in range(expr_module._COMPILE_CACHE_MAX + 10):
            node = parse("SELECT 1 FROM t WHERE a > 1").where
            keep.append(node)
            expr_module.compile_expr_cached(node, layout)
        assert len(expr_module._compile_cache) <= \
            expr_module._COMPILE_CACHE_MAX


class TestQueryExecution:
    def test_count_star(self, users_orders_db):
        assert users_orders_db.execute(
            "SELECT count(*) FROM users").scalar() == 60

    def test_filter_correctness(self, users_orders_db):
        result = users_orders_db.execute(
            "SELECT count(*) FROM users WHERE age >= 30")
        expected = sum(1 for i in range(60) if 20 + i % 40 >= 30)
        assert result.scalar() == expected

    def test_projection_names(self, users_orders_db):
        result = users_orders_db.execute(
            "SELECT name AS who, age FROM users LIMIT 1")
        assert result.columns == ["who", "age"]

    def test_join_matches_bruteforce(self, users_orders_db):
        result = users_orders_db.execute(
            "SELECT count(*) FROM users u JOIN orders o "
            "ON u.id = o.user_id WHERE u.age < 30")
        users = [(i, 20 + i % 40) for i in range(60)]
        orders = [(i, i % 60) for i in range(200)]
        expected = sum(1 for uid, age in users for _, ouid in orders
                       if uid == ouid and age < 30)
        assert result.scalar() == expected

    def test_group_by_aggregates(self, users_orders_db):
        result = users_orders_db.execute(
            "SELECT status, count(*), sum(amount) FROM orders "
            "GROUP BY status ORDER BY status")
        assert len(result.rows) == 3
        assert sum(row[1] for row in result.rows) == 200

    def test_avg_min_max(self, users_orders_db):
        result = users_orders_db.execute(
            "SELECT avg(age), min(age), max(age) FROM users")
        ages = [20 + i % 40 for i in range(60)]
        avg, lo, hi = result.rows[0]
        assert avg == pytest.approx(sum(ages) / len(ages))
        assert (lo, hi) == (min(ages), max(ages))

    def test_aggregate_arithmetic(self, users_orders_db):
        result = users_orders_db.execute(
            "SELECT max(age) - min(age) FROM users")
        assert result.scalar() == 39

    def test_order_by_desc_limit_offset(self, users_orders_db):
        result = users_orders_db.execute(
            "SELECT age FROM users ORDER BY age DESC LIMIT 3 OFFSET 1")
        ages = sorted((20 + i % 40 for i in range(60)), reverse=True)
        assert result.column("age") == ages[1:4]

    def test_distinct(self, users_orders_db):
        result = users_orders_db.execute(
            "SELECT DISTINCT city FROM users")
        assert len(result.rows) == 4

    def test_index_point_lookup(self, users_orders_db):
        result = users_orders_db.execute("SELECT name FROM users WHERE id = 7")
        assert result.rows == [("user7",)]

    def test_empty_result(self, users_orders_db):
        result = users_orders_db.execute(
            "SELECT * FROM users WHERE age > 1000")
        assert result.rows == []

    def test_count_on_empty_is_zero(self, users_orders_db):
        result = users_orders_db.execute(
            "SELECT count(*) FROM users WHERE age > 1000")
        assert result.scalar() == 0

    def test_tableless_select(self, users_orders_db):
        assert users_orders_db.execute("SELECT 2 + 3").scalar() == 5

    def test_virtual_time_positive(self, users_orders_db):
        result = users_orders_db.execute("SELECT count(*) FROM orders")
        assert result.virtual_seconds > 0

    def test_three_way_join(self, users_orders_db):
        users_orders_db.execute(
            "CREATE TABLE cities (code TEXT UNIQUE, country TEXT)")
        for code, country in [("sg", "SG"), ("ny", "US"), ("ldn", "UK"),
                              ("tok", "JP")]:
            users_orders_db.execute(
                f"INSERT INTO cities VALUES ('{code}', '{country}')")
        users_orders_db.execute("ANALYZE")
        result = users_orders_db.execute(
            "SELECT count(*) FROM users u JOIN orders o ON u.id = o.user_id "
            "JOIN cities c ON u.city = c.code WHERE c.country = 'US'")
        expected = sum(1 for i in range(200) if (i % 60) % 4 == 1)
        assert result.scalar() == expected


class TestCandidatePlansAgree:
    """Every candidate plan for a query must produce the same answer."""

    @pytest.mark.parametrize("sql", [
        "SELECT count(*) FROM users u JOIN orders o ON u.id = o.user_id",
        "SELECT count(*) FROM users u JOIN orders o ON u.id = o.user_id "
        "WHERE u.age > 30 AND o.amount < 200",
    ])
    def test_all_candidates_same_result(self, users_orders_db, sql):
        select = parse(sql)
        candidates = users_orders_db.planner.candidate_plans(select, 12)
        assert len(candidates) >= 2
        results = set()
        for candidate in candidates:
            result = users_orders_db.executor.run(candidate)
            results.add(result.rows[0][0])
        assert len(results) == 1


class TestMeasurePlanLatency:
    def test_uncapped(self, users_orders_db):
        select = parse("SELECT count(*) FROM users")
        node = users_orders_db.planner.plan_select(select)
        measured = measure_plan_latency(users_orders_db.executor,
                                        users_orders_db.clock, node)
        assert not measured.censored
        assert measured.latency > 0

    def test_cap_censors_pathological_plan(self, users_orders_db):
        select = parse("SELECT count(*) FROM users, orders")  # cross join
        candidates = users_orders_db.planner.candidate_plans(select, 8)
        worst = max(candidates, key=lambda c: c.est_cost)
        measured = measure_plan_latency(users_orders_db.executor,
                                        users_orders_db.clock, worst,
                                        cap_virtual=1e-6)
        assert measured.censored
        assert measured.latency == pytest.approx(1e-6)


@given(st.lists(st.integers(0, 20), min_size=0, max_size=60),
       st.lists(st.integers(0, 20), min_size=0, max_size=60))
@settings(max_examples=15, deadline=None)
def test_join_equivalent_to_bruteforce_property(left_keys, right_keys):
    """Hash-join output multiplicity equals the nested-loop definition."""
    db = repro.connect()
    db.execute("CREATE TABLE l (k INT)")
    db.execute("CREATE TABLE r (k INT)")
    for k in left_keys:
        db.execute(f"INSERT INTO l VALUES ({k})")
    for k in right_keys:
        db.execute(f"INSERT INTO r VALUES ({k})")
    db.execute("ANALYZE")
    got = db.execute("SELECT count(*) FROM l JOIN r ON l.k = r.k").scalar()
    expected = sum(1 for a in left_keys for b in right_keys if a == b)
    assert got == expected
