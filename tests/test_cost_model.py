"""Tests for the plan cost model, including the hash-spill mechanics that
drive the Fig. 8 stale-statistics traps."""

import numpy as np
import pytest

import repro
from repro.common.simtime import CostModel
from repro.exec.measure import measure_plan_latency
from repro.plan import HashJoin, Planner, SeqScan, plan_signature
from repro.plan.cardinality import CardinalityEstimator
from repro.sql import ast, parse


@pytest.fixture
def sized_db():
    """Two tables straddling the hash-spill threshold."""
    db = repro.connect()
    db.execute("CREATE TABLE small (k INT, pad INT)")
    db.execute("CREATE TABLE large (k INT, pad INT)")
    small = db.catalog.table("small")
    large = db.catalog.table("large")
    rng = np.random.default_rng(0)
    for i in range(300):
        small.insert((i % 100, int(rng.integers(100))))
    for i in range(3000):  # beyond HASH_SPILL_ROWS
        large.insert((i % 100, int(rng.integers(100))))
    db.execute("ANALYZE")
    return db


class TestHashSpill:
    def test_threshold_constant_sane(self):
        assert 100 < CostModel.HASH_SPILL_ROWS < 100_000

    def test_estimator_penalizes_large_build_side(self, sized_db):
        select = parse("SELECT count(*) FROM small s JOIN large l "
                       "ON s.k = l.k")
        candidates = sized_db.planner.candidate_plans(select, 8)
        small_build = next(
            c for c in candidates
            if "hj(seq(small)" in plan_signature(c))
        large_build = next(
            c for c in candidates
            if "hj(seq(large)" in plan_signature(c))
        assert small_build.est_cost < large_build.est_cost

    def test_executor_charges_spill(self, sized_db):
        select = parse("SELECT count(*) FROM small s JOIN large l "
                       "ON s.k = l.k")
        candidates = sized_db.planner.candidate_plans(select, 8)
        small_build = next(c for c in candidates
                           if "hj(seq(small)" in plan_signature(c))
        large_build = next(c for c in candidates
                           if "hj(seq(large)" in plan_signature(c))
        fast = measure_plan_latency(sized_db.executor, sized_db.clock,
                                    small_build).latency
        slow = measure_plan_latency(sized_db.executor, sized_db.clock,
                                    large_build).latency
        assert slow > fast * 2  # spilling genuinely hurts

    def test_planner_picks_non_spilling_side(self, sized_db):
        select = parse("SELECT count(*) FROM small s JOIN large l "
                       "ON s.k = l.k")
        best = sized_db.planner.plan_select(select)
        joins = [n for n in best.walk() if isinstance(n, HashJoin)]
        assert joins
        build = joins[0].left
        assert isinstance(build, SeqScan) and build.table == "small"


class TestCardinalityEstimator:
    def test_table_rows_from_stats(self, sized_db):
        est = CardinalityEstimator(sized_db.catalog)
        assert est.table_rows("large") == 3000

    def test_unknown_table_fallback(self, sized_db):
        est = CardinalityEstimator(sized_db.catalog)
        assert est.table_rows("ghost") > 0

    def test_selectivity_none_is_one(self, sized_db):
        est = CardinalityEstimator(sized_db.catalog)
        assert est.selectivity(None, {}) == 1.0

    def test_or_selectivity_inclusion_exclusion(self, sized_db):
        est = CardinalityEstimator(sized_db.catalog)
        bindings = {"large": "large"}
        single = parse("SELECT 1 FROM large WHERE k < 50").where
        both = parse("SELECT 1 FROM large WHERE k < 50 OR k < 50").where
        s1 = est.selectivity(single, bindings)
        s2 = est.selectivity(both, bindings)
        assert s2 == pytest.approx(s1 + s1 - s1 * s1, abs=0.01)

    def test_not_inverts(self, sized_db):
        est = CardinalityEstimator(sized_db.catalog)
        bindings = {"large": "large"}
        pos = parse("SELECT 1 FROM large WHERE k < 50").where
        neg = parse("SELECT 1 FROM large WHERE NOT k < 50").where
        assert (est.selectivity(pos, bindings)
                + est.selectivity(neg, bindings)) == pytest.approx(1.0,
                                                                   abs=0.02)

    def test_join_selectivity_uses_ndv(self, sized_db):
        est = CardinalityEstimator(sized_db.catalog)
        bindings = {"s": "small", "l": "large"}
        sel = est.join_selectivity(ast.ColumnRef("k", "s"),
                                   ast.ColumnRef("k", "l"), bindings)
        # both sides have 100 distinct keys
        assert sel == pytest.approx(1 / 100, rel=0.2)

    def test_selectivity_clamped(self, sized_db):
        est = CardinalityEstimator(sized_db.catalog)
        bindings = {"large": "large"}
        impossible = parse("SELECT 1 FROM large WHERE k < -100").where
        assert est.selectivity(impossible, bindings) >= 1e-6

    def test_in_list_sums(self, sized_db):
        est = CardinalityEstimator(sized_db.catalog)
        bindings = {"large": "large"}
        one = parse("SELECT 1 FROM large WHERE k IN (5)").where
        three = parse("SELECT 1 FROM large WHERE k IN (5, 6, 7)").where
        assert (est.selectivity(three, bindings)
                > est.selectivity(one, bindings))

    def test_is_null_selectivity(self):
        db = repro.connect()
        db.execute("CREATE TABLE n (v INT)")
        table = db.catalog.table("n")
        for i in range(100):
            table.insert((None if i < 25 else i,))
        db.execute("ANALYZE")
        est = CardinalityEstimator(db.catalog)
        expr = parse("SELECT 1 FROM n WHERE v IS NULL").where
        assert est.selectivity(expr, {"n": "n"}) == pytest.approx(0.25,
                                                                  abs=0.02)
