"""End-to-end tests of the NeurDB facade: DDL, DML, SELECT, PREDICT."""

import numpy as np
import pytest

import repro
from repro.common.errors import (
    BindError,
    CatalogError,
    ConstraintViolation,
    ExecutionError,
    NeurDBError,
)


class TestDDL:
    def test_create_and_drop(self):
        db = repro.connect()
        db.execute("CREATE TABLE t (a INT)")
        assert db.catalog.has_table("t")
        db.execute("DROP TABLE t")
        assert not db.catalog.has_table("t")

    def test_create_duplicate_fails(self):
        db = repro.connect()
        db.execute("CREATE TABLE t (a INT)")
        with pytest.raises(CatalogError):
            db.execute("CREATE TABLE t (a INT)")

    def test_drop_if_exists(self):
        db = repro.connect()
        db.execute("DROP TABLE IF EXISTS ghost")  # no error
        with pytest.raises(CatalogError):
            db.execute("DROP TABLE ghost")

    def test_create_index_backfills(self):
        db = repro.connect()
        db.execute("CREATE TABLE t (a INT)")
        db.execute("INSERT INTO t VALUES (5), (6)")
        db.execute("CREATE INDEX i ON t (a)")
        entry = db.catalog.indexes_on("t", "a")[0]
        assert len(entry.index.search(5)) == 1


class TestDML:
    def test_insert_with_column_subset(self):
        db = repro.connect()
        db.execute("CREATE TABLE t (a INT, b TEXT, c FLOAT)")
        db.execute("INSERT INTO t (c, a) VALUES (1.5, 7)")
        row = db.execute("SELECT a, b, c FROM t").rows[0]
        assert row == (7, None, 1.5)

    def test_insert_arity_mismatch(self):
        db = repro.connect()
        db.execute("CREATE TABLE t (a INT, b INT)")
        with pytest.raises(ExecutionError):
            db.execute("INSERT INTO t (a) VALUES (1, 2)")

    def test_insert_rowcount(self):
        db = repro.connect()
        db.execute("CREATE TABLE t (a INT)")
        result = db.execute("INSERT INTO t VALUES (1), (2), (3)")
        assert result.extra["rowcount"] == 3

    def test_update_with_expression(self):
        db = repro.connect()
        db.execute("CREATE TABLE t (a INT, b INT)")
        db.execute("INSERT INTO t VALUES (1, 10), (2, 20)")
        result = db.execute("UPDATE t SET b = b + a WHERE a = 2")
        assert result.extra["rowcount"] == 1
        assert db.execute("SELECT b FROM t WHERE a = 2").scalar() == 22

    def test_update_without_where_hits_all(self):
        db = repro.connect()
        db.execute("CREATE TABLE t (a INT)")
        db.execute("INSERT INTO t VALUES (1), (2)")
        result = db.execute("UPDATE t SET a = 0")
        assert result.extra["rowcount"] == 2

    def test_delete(self):
        db = repro.connect()
        db.execute("CREATE TABLE t (a INT)")
        db.execute("INSERT INTO t VALUES (1), (2), (3)")
        db.execute("DELETE FROM t WHERE a >= 2")
        assert db.execute("SELECT count(*) FROM t").scalar() == 1

    def test_unique_violation_via_sql(self):
        db = repro.connect()
        db.execute("CREATE TABLE t (a INT UNIQUE)")
        db.execute("INSERT INTO t VALUES (1)")
        with pytest.raises(ConstraintViolation):
            db.execute("INSERT INTO t VALUES (1)")

    def test_index_maintained_on_update_delete(self):
        db = repro.connect()
        db.execute("CREATE TABLE t (a INT)")
        db.execute("INSERT INTO t VALUES (1), (2)")
        db.execute("CREATE INDEX i ON t (a)")
        db.execute("UPDATE t SET a = 9 WHERE a = 1")
        entry = db.catalog.indexes_on("t", "a")[0]
        assert entry.index.search(1) == []
        assert len(entry.index.search(9)) == 1
        db.execute("DELETE FROM t WHERE a = 9")
        assert entry.index.search(9) == []

    def test_execute_script(self):
        db = repro.connect()
        results = db.execute_script(
            "CREATE TABLE t (a INT); INSERT INTO t VALUES (1); "
            "SELECT count(*) FROM t")
        assert results[-1].scalar() == 1


def _load_review_table(db, n=400, seed=0):
    """The paper's Listing-1 scenario: scores known except for one brand."""
    db.execute("CREATE TABLE review (rid INT UNIQUE, brand_name TEXT, "
               "f1 FLOAT, f2 FLOAT, score FLOAT)")
    rng = np.random.default_rng(seed)
    for i in range(n):
        brand = "special goods" if i % 4 == 0 else "other"
        f1, f2 = rng.random(2).round(3)
        score = round(3 * f1 - 2 * f2 + 1, 3)
        if brand == "special goods":
            db.execute(f"INSERT INTO review VALUES ({i}, '{brand}', "
                       f"{f1}, {f2}, NULL)")
        else:
            db.execute(f"INSERT INTO review VALUES ({i}, '{brand}', "
                       f"{f1}, {f2}, {score})")


class TestPredict:
    def test_listing1_regression(self):
        db = repro.connect()
        _load_review_table(db)
        result = db.execute(
            "PREDICT VALUE OF score FROM review "
            "WHERE brand_name = 'special goods' "
            "TRAIN ON * WITH brand_name <> 'special goods'")
        assert len(result.rows) == 100
        assert result.columns[-1] == "score"
        assert result.extra["trained_now"] is True
        # predictions should land in a sane range of the target
        predictions = [row[-1] for row in result.rows]
        assert -3 < min(predictions) and max(predictions) < 6

    def test_regression_learns_signal(self):
        db = repro.connect()
        _load_review_table(db, n=600)
        result = db.execute(
            "PREDICT VALUE OF score FROM review "
            "WHERE brand_name = 'special goods' "
            "TRAIN ON f1, f2 WITH brand_name <> 'special goods'")
        f1_idx = result.columns.index("f1")
        f2_idx = result.columns.index("f2")
        errors = []
        for row in result.rows:
            truth = 3 * row[f1_idx] - 2 * row[f2_idx] + 1
            errors.append(abs(row[-1] - truth))
        # must beat the trivial predict-the-mean baseline (std ~ 1.2)
        assert float(np.mean(errors)) < 1.0

    def test_classification_with_inline_values(self):
        db = repro.connect()
        db.execute("CREATE TABLE diabetes (pid INT UNIQUE, "
                   "glucose FLOAT, bmi FLOAT, outcome INT)")
        rng = np.random.default_rng(1)
        for i in range(500):
            glucose = float(rng.integers(70, 200))
            bmi = float(rng.integers(18, 45))
            outcome = int(glucose > 140)
            db.execute(f"INSERT INTO diabetes VALUES ({i}, {glucose}, "
                       f"{bmi}, {outcome})")
        result = db.execute(
            "PREDICT CLASS OF outcome FROM diabetes "
            "TRAIN ON glucose, bmi VALUES (190, 30), (80, 25)")
        assert [row[-1] for row in result.rows] == [1, 0]

    def test_train_on_star_excludes_unique_and_target(self):
        db = repro.connect()
        _load_review_table(db, n=100)
        result = db.execute(
            "PREDICT VALUE OF score FROM review "
            "WHERE brand_name = 'special goods' TRAIN ON *")
        assert "rid" not in result.columns[:-1]
        assert result.columns[-1] == "score"

    def test_model_reused_on_second_call(self):
        db = repro.connect()
        _load_review_table(db, n=120)
        sql = ("PREDICT VALUE OF score FROM review "
               "WHERE brand_name = 'special goods' TRAIN ON *")
        first = db.execute(sql)
        second = db.execute(sql)
        assert first.extra["trained_now"] is True
        assert second.extra["trained_now"] is False

    def test_force_retrain_creates_new_version(self):
        db = repro.connect()
        _load_review_table(db, n=120)
        sql = ("PREDICT VALUE OF score FROM review "
               "WHERE brand_name = 'special goods' TRAIN ON *")
        first = db.execute(sql)
        model_name = first.extra["model"]
        assert len(db.models.versions(model_name)) == 1
        retrained = db.execute(sql, force_retrain=True)
        assert retrained.extra["trained_now"] is True
        assert len(db.models.versions(model_name)) == 2

    def test_unknown_target_column(self):
        db = repro.connect()
        _load_review_table(db, n=50)
        with pytest.raises(BindError):
            db.execute("PREDICT VALUE OF ghost FROM review TRAIN ON *")

    def test_target_in_features_rejected(self):
        db = repro.connect()
        _load_review_table(db, n=50)
        with pytest.raises(BindError):
            db.execute("PREDICT VALUE OF score FROM review "
                       "TRAIN ON score, f1")

    def test_no_training_rows(self):
        db = repro.connect()
        db.execute("CREATE TABLE e (x FLOAT, y FLOAT)")
        db.execute("INSERT INTO e VALUES (1.0, NULL)")
        with pytest.raises(ExecutionError):
            db.execute("PREDICT VALUE OF y FROM e TRAIN ON x")

    def test_fine_tune_model_via_facade(self):
        db = repro.connect()
        _load_review_table(db, n=200)
        db.execute("PREDICT VALUE OF score FROM review "
                   "WHERE brand_name = 'special goods' TRAIN ON *")
        model_name = db.catalog.bound_model("review", "score")
        versions_before = db.models.versions(model_name)
        db.fine_tune_model("review", "score", epochs=1)
        assert len(db.models.versions(model_name)) == len(versions_before) + 1

    def test_fine_tune_without_binding(self):
        db = repro.connect()
        db.execute("CREATE TABLE t (a FLOAT, b FLOAT)")
        with pytest.raises(NeurDBError):
            db.fine_tune_model("t", "b")

    def test_predict_uses_virtual_clock(self):
        db = repro.connect()
        _load_review_table(db, n=150)
        before = db.clock.now
        db.execute("PREDICT VALUE OF score FROM review "
                   "WHERE brand_name = 'special goods' TRAIN ON *")
        assert db.clock.now > before
