"""Tests for the learned query optimizer and the Bao / Lero baselines."""

import numpy as np
import pytest

import repro
from repro.learned.qo import (
    BaoOptimizer,
    HINT_SETS,
    LearnedQueryOptimizer,
    LeroOptimizer,
    MAX_PLAN_NODES,
    PLAN_FEATURE_DIM,
    PlanFeaturizer,
    QOModel,
    SYSCOND_FEATURE_DIM,
    SystemConditionFeaturizer,
    plan_under_hints,
    referenced_table_columns,
)
from repro.plan import logical as plan
from repro.sql import parse

QUERY = ("SELECT count(*) FROM users u JOIN orders o ON u.id = o.user_id "
         "WHERE u.age > 30")
QUERIES = [
    QUERY,
    "SELECT count(*) FROM users u JOIN orders o ON u.id = o.user_id "
    "WHERE o.amount > 100",
    "SELECT count(*) FROM users u JOIN orders o ON u.id = o.user_id "
    "WHERE u.city = 'sg' AND o.status = 'paid'",
]


class TestPlanFeaturizer:
    def test_shape(self, users_orders_db):
        node = users_orders_db.planner.plan_select(parse(QUERY))
        matrix = PlanFeaturizer().featurize(node)
        assert matrix.shape == (MAX_PLAN_NODES, PLAN_FEATURE_DIM)

    def test_different_plans_different_features(self, users_orders_db):
        candidates = users_orders_db.planner.candidate_plans(parse(QUERY), 8)
        featurizer = PlanFeaturizer()
        mats = [featurizer.featurize(c) for c in candidates]
        assert not np.allclose(mats[0], mats[-1])

    def test_node_type_one_hot(self, users_orders_db):
        node = users_orders_db.planner.plan_select(parse(QUERY))
        matrix = PlanFeaturizer().featurize(node)
        live_rows = matrix[matrix.any(axis=1)]
        # exactly one node-type flag per live node
        assert np.allclose(live_rows[:, :10].sum(axis=1), 1.0)


class TestSystemConditionFeaturizer:
    def test_shape_and_buffer_row(self, users_orders_db):
        featurizer = SystemConditionFeaturizer()
        matrix = featurizer.featurize(users_orders_db.catalog,
                                      [("users", "age")],
                                      users_orders_db.buffer_pool)
        assert matrix.shape[1] == SYSCOND_FEATURE_DIM
        assert matrix[0].any()   # buffer row populated
        assert matrix[1].any()   # column stats row populated

    def test_reflects_live_data_not_stale_stats(self, users_orders_db):
        featurizer = SystemConditionFeaturizer()
        before = featurizer.featurize(users_orders_db.catalog,
                                      [("orders", "amount")])
        for i in range(500, 900):
            users_orders_db.execute(
                f"INSERT INTO orders VALUES ({i}, 1, 99999.0, 'paid')")
        # deliberately NO ANALYZE: live sampling must still see the change
        after = featurizer.featurize(users_orders_db.catalog,
                                     [("orders", "amount")])
        assert not np.allclose(before[1], after[1])

    def test_unknown_column_row_stays_zero(self, users_orders_db):
        featurizer = SystemConditionFeaturizer()
        matrix = featurizer.featurize(users_orders_db.catalog,
                                      [("users", "nope")])
        assert not matrix[1, :21].any()

    def test_referenced_table_columns(self, users_orders_db):
        bound = users_orders_db.planner.bind(parse(QUERY))
        pairs = referenced_table_columns(bound)
        assert ("users", "age") in pairs
        assert ("users", "id") in pairs
        assert ("orders", "user_id") in pairs


class TestQOModel:
    def test_forward_shape(self):
        model = QOModel(d_model=16, num_heads=2)
        plans = np.random.default_rng(0).random((5, MAX_PLAN_NODES,
                                                 PLAN_FEATURE_DIM))
        conds = np.random.default_rng(1).random((5, 4,
                                                 SYSCOND_FEATURE_DIM))
        out = model.forward(plans, conds)
        assert out.shape == (5,)

    def test_fit_reduces_loss(self):
        rng = np.random.default_rng(0)
        model = QOModel(d_model=16, num_heads=2)
        plans = rng.random((40, MAX_PLAN_NODES, PLAN_FEATURE_DIM))
        conds = rng.random((40, 4, SYSCOND_FEATURE_DIM))
        targets = plans[:, 0, :].sum(axis=1)  # learnable signal
        losses = model.fit(plans, conds, targets, epochs=25, lr=3e-3)
        assert losses[-1] < losses[0] * 0.7


class TestLearnedQueryOptimizer:
    def test_choose_plan_returns_candidate(self, users_orders_db):
        qo = LearnedQueryOptimizer()
        chosen, choice = qo.choose_plan(users_orders_db, parse(QUERY))
        assert isinstance(chosen, plan.PlanNode)
        assert 0 <= choice.chosen_index < choice.candidate_count

    def test_execute_produces_correct_answer(self, users_orders_db):
        qo = LearnedQueryOptimizer()
        reference = users_orders_db.execute(QUERY).scalar()
        result = qo.execute(users_orders_db, QUERY)
        assert result.rows[0][0] == reference

    def test_collect_samples_and_fit(self, users_orders_db):
        qo = LearnedQueryOptimizer()
        samples = []
        for sql in QUERIES:
            samples.extend(qo.collect_samples(users_orders_db, sql))
        assert len(samples) >= 6
        losses = qo.fit(samples, epochs=10)
        assert losses[-1] < losses[0]

    def test_trained_model_beats_random_ranking(self, users_orders_db):
        """After training on measured latencies the model's chosen plan
        must be no slower than the median candidate."""
        from repro.exec.measure import measure_plan_latency
        qo = LearnedQueryOptimizer()
        samples = []
        for sql in QUERIES:
            samples.extend(qo.collect_samples(users_orders_db, sql))
        qo.fit(samples, epochs=40, lr=2e-3)
        for sql in QUERIES:
            select = parse(sql)
            candidates = users_orders_db.planner.candidate_plans(select, 12)
            latencies = [measure_plan_latency(
                users_orders_db.executor, users_orders_db.clock, c,
                cap_virtual=0.2).latency for c in candidates]
            chosen, _ = qo.choose_plan(users_orders_db, select)
            chosen_latency = measure_plan_latency(
                users_orders_db.executor, users_orders_db.clock, chosen,
                cap_virtual=0.2).latency
            assert chosen_latency <= np.median(latencies) * 1.05

    def test_rejects_non_select(self, users_orders_db):
        qo = LearnedQueryOptimizer()
        with pytest.raises(TypeError):
            qo.execute(users_orders_db, "INSERT INTO users VALUES (999)")


class TestBao:
    def test_hint_sets_constrain_plans(self, users_orders_db):
        select = parse(QUERY)
        hash_only = plan_under_hints(users_orders_db, select, "hash-only")
        assert not any(isinstance(n, plan.NestedLoopJoin)
                       and n.condition is not None
                       for n in hash_only.walk())
        nlj_only = plan_under_hints(users_orders_db, select, "nlj-only")
        assert not any(isinstance(n, plan.HashJoin)
                       for n in nlj_only.walk())

    def test_untrained_raises(self, users_orders_db):
        with pytest.raises(RuntimeError):
            BaoOptimizer().choose_plan(users_orders_db, parse(QUERY))

    def test_train_then_choose(self, users_orders_db):
        bao = BaoOptimizer()
        bao.train(users_orders_db, QUERIES)
        chosen = bao.choose_plan(users_orders_db, parse(QUERY))
        assert isinstance(chosen, plan.PlanNode)
        result = bao.execute(users_orders_db, QUERY)
        assert result.rows[0][0] == users_orders_db.execute(QUERY).scalar()

    def test_all_arms_modeled(self, users_orders_db):
        bao = BaoOptimizer()
        bao.train(users_orders_db, QUERIES)
        assert set(bao._arms) == set(HINT_SETS)


class TestLero:
    def test_untrained_raises(self, users_orders_db):
        with pytest.raises(RuntimeError):
            LeroOptimizer().choose_plan(users_orders_db, parse(QUERY))

    def test_train_then_choose_correct_result(self, users_orders_db):
        lero = LeroOptimizer()
        losses = lero.train(users_orders_db, QUERIES, epochs=30)
        assert losses[-1] < losses[0]
        result = lero.execute(users_orders_db, QUERY)
        assert result.rows[0][0] == users_orders_db.execute(QUERY).scalar()

    def test_comparator_antisymmetric_at_inference(self, users_orders_db):
        lero = LeroOptimizer()
        lero.train(users_orders_db, QUERIES, epochs=20)
        candidates = users_orders_db.planner.candidate_plans(parse(QUERY), 6)
        a = lero._pooled(candidates[0])
        b = lero._pooled(candidates[-1])
        assert lero._beats(a, b) != lero._beats(b, a) or np.allclose(a, b)

    def test_chosen_plan_not_pathological(self, users_orders_db):
        from repro.exec.measure import measure_plan_latency
        lero = LeroOptimizer()
        lero.train(users_orders_db, QUERIES, epochs=40)
        select = parse(QUERY)
        candidates = users_orders_db.planner.candidate_plans(select, 12)
        latencies = [measure_plan_latency(
            users_orders_db.executor, users_orders_db.clock, c,
            cap_virtual=0.2).latency for c in candidates]
        chosen = lero.choose_plan(users_orders_db, select)
        chosen_latency = measure_plan_latency(
            users_orders_db.executor, users_orders_db.clock, chosen,
            cap_virtual=0.2).latency
        assert chosen_latency <= max(latencies) * 0.9
