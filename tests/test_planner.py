"""Tests for the planner: binding, access paths, join enumeration, costing."""

import pytest

import repro
from repro.common.errors import PlanError
from repro.plan import (
    Aggregate,
    Filter,
    HashJoin,
    IndexScan,
    Limit,
    NestedLoopJoin,
    Planner,
    Project,
    SeqScan,
    Sort,
    conjoin,
    plan_signature,
    split_conjuncts,
)
from repro.sql import ast, parse


class TestConjuncts:
    def test_split_flat(self):
        where = parse("SELECT 1 FROM t WHERE a = 1 AND b = 2 AND c = 3").where
        assert len(split_conjuncts(where)) == 3

    def test_split_none(self):
        assert split_conjuncts(None) == []

    def test_or_not_split(self):
        where = parse("SELECT 1 FROM t WHERE a = 1 OR b = 2").where
        assert len(split_conjuncts(where)) == 1

    def test_conjoin_roundtrip(self):
        where = parse("SELECT 1 FROM t WHERE a = 1 AND b = 2").where
        parts = split_conjuncts(where)
        rebuilt = conjoin(parts)
        assert split_conjuncts(rebuilt) == parts

    def test_conjoin_empty(self):
        assert conjoin([]) is None


class TestBinding:
    def test_bind_classifies_predicates(self, users_orders_db):
        planner = users_orders_db.planner
        select = parse("SELECT count(*) FROM users u JOIN orders o "
                       "ON u.id = o.user_id WHERE u.age > 5 AND "
                       "o.amount < 10")
        bound = planner.bind(select)
        assert bound.bindings == {"u": "users", "o": "orders"}
        assert len(bound.join_conditions) == 1
        assert len(bound.filters["u"]) == 1
        assert len(bound.filters["o"]) == 1

    def test_unqualified_column_resolution(self, users_orders_db):
        select = parse("SELECT count(*) FROM users u JOIN orders o "
                       "ON u.id = o.user_id WHERE age > 5")
        bound = users_orders_db.planner.bind(select)
        assert bound.filters["u"]  # 'age' only exists in users

    def test_unknown_table(self, users_orders_db):
        with pytest.raises(PlanError):
            users_orders_db.planner.bind(parse("SELECT 1 FROM nope"))

    def test_unknown_column(self, users_orders_db):
        with pytest.raises(PlanError):
            users_orders_db.planner.bind(
                parse("SELECT 1 FROM users WHERE banana = 1"))

    def test_duplicate_alias(self, users_orders_db):
        with pytest.raises(PlanError):
            users_orders_db.planner.bind(
                parse("SELECT 1 FROM users u, orders u"))


class TestAccessPaths:
    def test_index_chosen_for_unique_eq(self, users_orders_db):
        node = users_orders_db.planner.plan_select(
            parse("SELECT * FROM users WHERE id = 5"))
        kinds = [type(n) for n in node.walk()]
        assert IndexScan in kinds

    def test_seqscan_with_pushdown_without_index(self, users_orders_db):
        node = users_orders_db.planner.plan_select(
            parse("SELECT * FROM orders WHERE amount > 100"))
        scans = [n for n in node.walk() if isinstance(n, SeqScan)]
        assert scans and scans[0].predicate is not None

    def test_range_index_scan(self, users_orders_db):
        node = users_orders_db.planner.plan_select(
            parse("SELECT * FROM users WHERE id < 5"))
        index_nodes = [n for n in node.walk() if isinstance(n, IndexScan)]
        if index_nodes:  # chosen only if estimated cheaper
            assert index_nodes[0].high == 5


class TestJoinPlanning:
    def test_equi_join_uses_hash(self, users_orders_db):
        node = users_orders_db.planner.plan_select(
            parse("SELECT count(*) FROM users u JOIN orders o "
                  "ON u.id = o.user_id"))
        assert any(isinstance(n, HashJoin) for n in node.walk())

    def test_cross_join_uses_nlj(self, users_orders_db):
        node = users_orders_db.planner.plan_select(
            parse("SELECT count(*) FROM users, orders"))
        assert any(isinstance(n, NestedLoopJoin) for n in node.walk())

    def test_candidates_are_unique_and_costed(self, users_orders_db):
        candidates = users_orders_db.planner.candidate_plans(
            parse("SELECT count(*) FROM users u JOIN orders o "
                  "ON u.id = o.user_id"), 16)
        signatures = [plan_signature(c) for c in candidates]
        assert len(signatures) == len(set(signatures))
        assert all(c.est_cost > 0 for c in candidates)

    def test_candidates_sorted_by_estimated_cost(self, users_orders_db):
        candidates = users_orders_db.planner.candidate_plans(
            parse("SELECT count(*) FROM users u JOIN orders o "
                  "ON u.id = o.user_id WHERE u.age > 30"), 16)
        costs = [c.est_cost for c in candidates]
        assert costs == sorted(costs)

    def test_best_plan_is_first_candidate(self, users_orders_db):
        select = parse("SELECT count(*) FROM users u JOIN orders o "
                       "ON u.id = o.user_id")
        best = users_orders_db.planner.plan_select(select)
        first = users_orders_db.planner.candidate_plans(select, 8)[0]
        assert plan_signature(best) == plan_signature(first)


class TestUpperPlan:
    def test_aggregate_node_for_group_by(self, users_orders_db):
        node = users_orders_db.planner.plan_select(
            parse("SELECT city, count(*) FROM users GROUP BY city"))
        assert isinstance(node, Aggregate)

    def test_plain_select_gets_project(self, users_orders_db):
        node = users_orders_db.planner.plan_select(
            parse("SELECT name FROM users"))
        assert isinstance(node, Project)

    def test_sort_and_limit_stack(self, users_orders_db):
        node = users_orders_db.planner.plan_select(
            parse("SELECT name FROM users ORDER BY age LIMIT 3"))
        assert isinstance(node, Limit)
        assert isinstance(node.child, Sort)

    def test_estimates_populated(self, users_orders_db):
        node = users_orders_db.planner.plan_select(
            parse("SELECT count(*) FROM users WHERE age > 30"))
        for sub in node.walk():
            assert sub.est_cost >= 0

    def test_pretty_renders(self, users_orders_db):
        node = users_orders_db.planner.plan_select(
            parse("SELECT count(*) FROM users"))
        text = node.pretty()
        assert "SeqScan" in text


class TestCardinality:
    def test_selectivity_shrinks_estimate(self, users_orders_db):
        planner = users_orders_db.planner
        all_rows = planner.plan_select(parse("SELECT * FROM users"))
        narrow = planner.plan_select(
            parse("SELECT * FROM users WHERE age > 55"))
        assert narrow.est_rows < all_rows.est_rows

    def test_eq_more_selective_than_range(self, users_orders_db):
        planner = users_orders_db.planner
        eq = planner.plan_select(
            parse("SELECT * FROM users WHERE age = 30"))
        rng = planner.plan_select(
            parse("SELECT * FROM users WHERE age > 21"))
        assert eq.est_rows < rng.est_rows

    def test_conjunction_multiplies(self, users_orders_db):
        planner = users_orders_db.planner
        one = planner.plan_select(
            parse("SELECT * FROM users WHERE age > 30"))
        two = planner.plan_select(
            parse("SELECT * FROM users WHERE age > 30 AND city = 'sg'"))
        assert two.est_rows < one.est_rows

    def test_stale_stats_after_growth(self):
        db = repro.connect()
        db.execute("CREATE TABLE g (v INT)")
        for i in range(50):
            db.execute(f"INSERT INTO g VALUES ({i})")
        db.execute("ANALYZE")
        before = db.planner.plan_select(parse("SELECT * FROM g")).est_rows
        for i in range(500):
            db.execute(f"INSERT INTO g VALUES ({i})")
        # without re-ANALYZE the estimate stays stale
        stale = db.planner.plan_select(parse("SELECT * FROM g")).est_rows
        assert stale == before
        db.execute("ANALYZE")
        fresh = db.planner.plan_select(parse("SELECT * FROM g")).est_rows
        assert fresh > stale
