"""Tests for the learned concurrency control: encoder, decision model,
two-phase adaptation, and the Polyjuice baseline."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.learned.cc import (
    ARCHETYPES,
    FEATURE_DIM,
    PARAM_COUNT,
    ContentionEncoder,
    DecisionModel,
    LearnedCCPolicy,
    PolyjuicePolicy,
    PolyjuiceTrainer,
    SurrogateModel,
    TwoPhaseAdapter,
    archetype_params,
)
from repro.txnsim import (
    ActionType,
    GlobalState,
    KeyState,
    Operation,
    Transaction,
    TxnSimulator,
)
from repro.workloads.ycsb import YCSBConfig, YCSBWorkload


def make_context(is_write=True, hotness=0.0, write_hotness=0.0,
                 exclusive=False, waiters=0, remaining=5, length=10,
                 aborted=0, committed=100):
    txn = Transaction(txn_id=1, type_id=0,
                      ops=[Operation(0, is_write)] * length)
    txn.op_index = length - remaining
    key = KeyState(recent_accesses=hotness, recent_writes=write_hotness)
    if exclusive:
        key.lock_holders[99] = True
    key.wait_queue = [(i, True) for i in range(waiters)]
    state = GlobalState(committed=committed, aborted=aborted)
    op = Operation(0, is_write)
    return txn, op, key, state


class TestContentionEncoder:
    def test_dimension(self):
        encoder = ContentionEncoder()
        features = encoder.encode(*make_context())
        assert features.shape == (FEATURE_DIM,)

    def test_all_features_bounded(self):
        encoder = ContentionEncoder()
        features = encoder.encode(*make_context(
            hotness=1e6, write_hotness=1e6, waiters=100, length=1000))
        assert (features >= 0).all() and (features <= 1).all()

    def test_write_flag(self):
        encoder = ContentionEncoder()
        assert encoder.encode(*make_context(is_write=True))[0] == 1.0
        assert encoder.encode(*make_context(is_write=False))[0] == 0.0

    def test_hotness_monotone(self):
        encoder = ContentionEncoder()
        cold = encoder.encode(*make_context(hotness=0.0))[1]
        warm = encoder.encode(*make_context(hotness=4.0))[1]
        hot = encoder.encode(*make_context(hotness=50.0))[1]
        assert cold < warm <= hot

    def test_exclusive_and_waiters(self):
        encoder = ContentionEncoder()
        features = encoder.encode(*make_context(exclusive=True, waiters=2))
        assert features[3] == 1.0
        assert features[4] == pytest.approx(0.5)

    def test_abort_ratio(self):
        encoder = ContentionEncoder()
        features = encoder.encode(*make_context(aborted=50, committed=50))
        assert features[7] == pytest.approx(0.5)

    def test_reuses_output_buffer(self):
        encoder = ContentionEncoder()
        buffer = np.empty(FEATURE_DIM)
        out = encoder.encode(*make_context(), out=buffer)
        assert out is buffer


class TestDecisionModel:
    def test_param_roundtrip(self):
        model = DecisionModel()
        params = model.get_params()
        assert params.shape == (PARAM_COUNT,)
        model2 = DecisionModel(params)
        assert np.array_equal(model2.get_params(), params)

    def test_wrong_param_count(self):
        with pytest.raises(ValueError):
            DecisionModel(np.zeros(5))

    def test_decide_returns_action(self):
        model = DecisionModel()
        features = np.zeros(FEATURE_DIM)
        assert isinstance(model.decide(features), ActionType)

    def test_default_policy_optimistic_on_cold_reads(self):
        model = DecisionModel()
        encoder = ContentionEncoder()
        features = encoder.encode(*make_context(is_write=False,
                                                hotness=0.0))
        assert model.decide(features) is ActionType.OPTIMISTIC

    def test_archetypes_behave_distinctly(self):
        encoder = ContentionEncoder()
        hot_write = encoder.encode(*make_context(
            is_write=True, hotness=20.0, write_hotness=20.0,
            exclusive=True, waiters=3, remaining=9, length=10,
            aborted=30, committed=70))
        opt = DecisionModel(archetype_params("optimistic"))
        lock = DecisionModel(archetype_params("lock-writes"))
        shed = DecisionModel(archetype_params("shed-hot"))
        assert opt.decide(hot_write) is ActionType.OPTIMISTIC
        assert lock.decide(hot_write) is ActionType.ACQUIRE_LOCK
        assert shed.decide(hot_write) is ActionType.ABORT

    def test_unknown_archetype(self):
        with pytest.raises(KeyError):
            archetype_params("bogus")

    @given(st.lists(st.floats(0, 1), min_size=FEATURE_DIM,
                    max_size=FEATURE_DIM))
    @settings(max_examples=30)
    def test_decide_total_property(self, values):
        model = DecisionModel()
        action = model.decide(np.asarray(values))
        assert isinstance(action, ActionType)


class TestLearnedCCPolicy:
    def test_snapshot_reads(self):
        assert LearnedCCPolicy().validate_reads() is False

    def test_timeout_discipline(self):
        assert LearnedCCPolicy().wait_discipline() == "timeout"

    def test_starvation_guard(self):
        policy = LearnedCCPolicy(DecisionModel(archetype_params("shed-hot")))
        txn, op, key, state = make_context(
            is_write=True, hotness=20.0, write_hotness=20.0,
            exclusive=True, waiters=3, aborted=40, committed=60)
        txn.restarts = 5  # beyond MAX_POLICY_RESTARTS
        action = policy.choose_action(txn, op, key, state)
        assert action is not ActionType.ABORT

    def test_decision_counters(self):
        policy = LearnedCCPolicy()
        context = make_context(is_write=False)
        policy.choose_action(*context)
        assert sum(policy.decisions.values()) == 1


class TestSurrogate:
    def test_cold_start_explores(self):
        surrogate = SurrogateModel()
        assert surrogate.acquisition(np.zeros(PARAM_COUNT)) == float("inf")

    def test_prefers_high_reward_region(self):
        surrogate = SurrogateModel(exploration=0.0)
        rng = np.random.default_rng(0)
        good = rng.normal(0, 1, PARAM_COUNT)
        bad = -good
        for _ in range(5):
            surrogate.observe(good + rng.normal(0, 0.05, PARAM_COUNT), 100.0)
            surrogate.observe(bad + rng.normal(0, 0.05, PARAM_COUNT), 10.0)
        assert surrogate.acquisition(good) > surrogate.acquisition(bad)


class TestTwoPhaseAdapter:
    def test_improves_quadratic_toy(self):
        """Reward = negative distance to a hidden optimum: the adapter
        must move toward it."""
        rng = np.random.default_rng(0)
        target = rng.normal(0, 1, PARAM_COUNT)

        def reward(params):
            return -float(np.linalg.norm(params - target))

        adapter = TwoPhaseAdapter(candidates=5, refine_steps=4, seed=1,
                                  anchors=[np.zeros(PARAM_COUNT)])
        start = np.zeros(PARAM_COUNT)
        adapted, report = adapter.adapt(start, reward)
        assert reward(adapted) > reward(start)
        assert report.refined_reward >= report.filtered_reward * 0.999

    def test_report_counts_evaluations(self):
        calls = []

        def reward(params):
            calls.append(1)
            return 0.0

        adapter = TwoPhaseAdapter(candidates=4, refine_steps=2, seed=0)
        _, report = adapter.adapt(np.zeros(PARAM_COUNT), reward)
        assert report.evaluations == len(calls)

    def test_anchors_always_evaluated(self):
        seen = []

        def reward(params):
            seen.append(params.copy())
            return 0.0

        anchor = np.full(PARAM_COUNT, 7.0)
        adapter = TwoPhaseAdapter(candidates=3, refine_steps=1, seed=0,
                                  anchors=[anchor])
        adapter.adapt(np.zeros(PARAM_COUNT), reward)
        assert any(np.array_equal(s, anchor) for s in seen)

    def test_keeps_current_when_nothing_better(self):
        def reward(params):
            # current (zeros) is the unique optimum
            return -float(np.abs(params).sum())

        adapter = TwoPhaseAdapter(candidates=4, refine_steps=2, seed=3,
                                  anchors=[])
        adapted, report = adapter.adapt(np.zeros(PARAM_COUNT), reward)
        assert report.refined_reward >= report.initial_reward


class TestPolyjuice:
    def test_table_lookup_by_type_and_op(self):
        policy = PolyjuicePolicy(max_types=2, max_ops=4)
        policy.table[:] = 0
        policy.table[1 * 4 + 2] = 1  # type 1, op 2 -> lock
        txn = Transaction(txn_id=1, type_id=1,
                          ops=[Operation(0, True)] * 4)
        txn.op_index = 2
        action = policy.choose_action(txn, txn.ops[2], KeyState(),
                                      GlobalState())
        assert action is ActionType.ACQUIRE_LOCK

    def test_op_index_clamped(self):
        policy = PolyjuicePolicy(max_types=1, max_ops=2)
        txn = Transaction(txn_id=1, type_id=0,
                          ops=[Operation(0, True)] * 10)
        txn.op_index = 9  # beyond max_ops: reuses last column
        action = policy.choose_action(txn, txn.ops[9], KeyState(),
                                      GlobalState())
        assert isinstance(action, ActionType)

    def test_set_params_clamps(self):
        policy = PolyjuicePolicy(max_types=1, max_ops=3)
        policy.set_params(np.array([-5.0, 1.4, 99.0]))
        assert policy.table.tolist() == [0, 1, 2]

    def test_trainer_improves_on_toy_reward(self):
        policy = PolyjuicePolicy(max_types=1, max_ops=8)

        def reward(table):
            return -float(np.abs(np.rint(table) - 1).sum())  # all-lock best

        trainer = PolyjuiceTrainer(policy, population=8,
                                   mutation_rate=0.3, seed=0)
        first = trainer.evolve(reward, generations=1).best_reward
        last = trainer.evolve(reward, generations=10).best_reward
        assert last >= first

    def test_trainer_installs_best_table(self):
        policy = PolyjuicePolicy(max_types=1, max_ops=4)

        def reward(table):
            return float((np.rint(table) == 1).sum())

        trainer = PolyjuiceTrainer(policy, population=10,
                                   mutation_rate=0.5, seed=0)
        trainer.evolve(reward, generations=15)
        assert (policy.table == 1).sum() >= 3


class TestLearnedCCEndToEnd:
    def test_learned_policy_runs_in_simulator(self):
        workload = YCSBWorkload(YCSBConfig(records=10_000, zipf_theta=0.9))
        policy = LearnedCCPolicy()
        result = TxnSimulator(4, policy, workload, seed=1).run(0.005)
        assert result.committed > 0
        assert sum(policy.decisions.values()) > 0

    def test_adaptation_beats_bad_start_on_real_sim(self):
        """Start from the lock-everything archetype on a workload where
        optimistic wins; adaptation must recover most of the gap."""
        workload = YCSBWorkload(YCSBConfig(records=1_000_000,
                                           zipf_theta=0.9))

        def evaluate(params):
            policy = LearnedCCPolicy(DecisionModel(params.copy()))
            sim = TxnSimulator(16, policy, workload, seed=2)
            return sim.run(0.004).throughput

        start = archetype_params("lock-writes")
        adapter = TwoPhaseAdapter(candidates=4, sigma=2.0, refine_steps=2,
                                  seed=0)
        adapted, report = adapter.adapt(start.copy(), evaluate)
        assert report.refined_reward > report.initial_reward * 1.2
