"""Tests for B+-tree and hash indexes, including property-based checks."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.storage.index import BPlusTreeIndex, HashIndex
from repro.storage.page import RecordId


def rid(i: int) -> RecordId:
    return RecordId(i // 100, i % 100)


class TestBPlusTree:
    def test_insert_search(self):
        index = BPlusTreeIndex("i", "t", "c")
        index.insert(5, rid(1))
        assert index.search(5) == [rid(1)]
        assert index.search(6) == []

    def test_duplicate_keys_accumulate(self):
        index = BPlusTreeIndex("i", "t", "c")
        index.insert(5, rid(1))
        index.insert(5, rid(2))
        assert sorted(index.search(5)) == [rid(1), rid(2)]

    def test_null_keys_not_indexed(self):
        index = BPlusTreeIndex("i", "t", "c")
        index.insert(None, rid(1))
        assert len(index) == 0
        assert index.search(None) == []

    def test_split_growth(self):
        index = BPlusTreeIndex("i", "t", "c")
        for i in range(1000):
            index.insert(i, rid(i))
        assert index.height >= 2
        for probe in (0, 17, 500, 999):
            assert index.search(probe) == [rid(probe)]

    def test_reverse_insert_order(self):
        index = BPlusTreeIndex("i", "t", "c")
        for i in reversed(range(500)):
            index.insert(i, rid(i))
        keys = [k for k, _ in index.range_scan()]
        assert keys == sorted(keys) == list(range(500))

    def test_range_scan_bounds(self):
        index = BPlusTreeIndex("i", "t", "c")
        for i in range(100):
            index.insert(i, rid(i))
        keys = [k for k, _ in index.range_scan(low=10, high=20)]
        assert keys == list(range(10, 21))

    def test_range_scan_exclusive_bounds(self):
        index = BPlusTreeIndex("i", "t", "c")
        for i in range(10):
            index.insert(i, rid(i))
        keys = [k for k, _ in index.range_scan(low=2, high=6,
                                               include_low=False,
                                               include_high=False)]
        assert keys == [3, 4, 5]

    def test_range_scan_open_ended(self):
        index = BPlusTreeIndex("i", "t", "c")
        for i in range(50):
            index.insert(i, rid(i))
        assert len(list(index.range_scan(low=40))) == 10
        assert len(list(index.range_scan(high=9))) == 10

    def test_delete(self):
        index = BPlusTreeIndex("i", "t", "c")
        index.insert(5, rid(1))
        index.insert(5, rid(2))
        assert index.delete(5, rid(1)) is True
        assert index.search(5) == [rid(2)]
        assert index.delete(5, rid(99)) is False

    def test_delete_last_posting_removes_key(self):
        index = BPlusTreeIndex("i", "t", "c")
        index.insert(5, rid(1))
        index.delete(5, rid(1))
        assert index.search(5) == []
        assert len(index) == 0

    def test_string_keys(self):
        index = BPlusTreeIndex("i", "t", "c")
        for word in ["pear", "apple", "mango", "fig"]:
            index.insert(word, rid(hash(word) % 100))
        keys = [k for k, _ in index.range_scan()]
        assert keys == sorted(keys)

    @given(st.lists(st.integers(min_value=-10_000, max_value=10_000),
                    min_size=1, max_size=400))
    @settings(max_examples=30, deadline=None)
    def test_matches_sorted_reference(self, keys):
        index = BPlusTreeIndex("i", "t", "c")
        for pos, key in enumerate(keys):
            index.insert(key, rid(pos))
        scanned = [k for k, _ in index.range_scan()]
        assert scanned == sorted(keys)
        probe = keys[len(keys) // 2]
        expected = [rid(p) for p, k in enumerate(keys) if k == probe]
        assert sorted(index.search(probe)) == sorted(expected)

    @given(st.lists(st.tuples(st.integers(0, 50), st.booleans()),
                    min_size=1, max_size=200))
    @settings(max_examples=30, deadline=None)
    def test_insert_delete_mixed_property(self, operations):
        index = BPlusTreeIndex("i", "t", "c")
        reference: dict[int, list] = {}
        for pos, (key, is_delete) in enumerate(operations):
            if is_delete and reference.get(key):
                victim = reference[key].pop()
                assert index.delete(key, victim)
            else:
                r = rid(pos)
                index.insert(key, r)
                reference.setdefault(key, []).append(r)
        for key, rids in reference.items():
            assert sorted(index.search(key)) == sorted(rids)


class TestHashIndex:
    def test_insert_search_delete(self):
        index = HashIndex("i", "t", "c")
        index.insert("k", rid(1))
        assert index.search("k") == [rid(1)]
        assert index.delete("k", rid(1)) is True
        assert index.search("k") == []

    def test_null_not_indexed(self):
        index = HashIndex("i", "t", "c")
        index.insert(None, rid(1))
        assert len(index) == 0

    def test_missing_delete(self):
        index = HashIndex("i", "t", "c")
        assert index.delete("nope", rid(1)) is False

    def test_multiple_postings(self):
        index = HashIndex("i", "t", "c")
        for i in range(5):
            index.insert(7, rid(i))
        assert len(index.search(7)) == 5
