"""Tests for the PostgreSQL+P baseline and small-scale bench drivers."""

import numpy as np
import pytest

from repro.ai.engine import AIEngine
from repro.ai.tasks import TrainTask
from repro.baseline import PostgresPlusP
from repro.bench.fig6 import run_fig6a, run_fig6b, run_fig6c
from repro.bench.reporting import format_table, geometric_mean
from repro.common.errors import AIEngineError
from repro.common.simtime import SimClock


def make_dataset(n=400, fields=6, seed=0):
    rng = np.random.default_rng(seed)
    rows = [[float(v) for v in rng.integers(0, 10, fields)]
            for _ in range(n)]
    labels = (rng.random(n) < 0.3).astype(float)
    return rows, labels


class TestPostgresPlusP:
    def test_train_returns_losses(self):
        rows, labels = make_dataset()
        baseline = PostgresPlusP()
        result = baseline.train(
            TrainTask(model_name="b", field_count=6, epochs=2,
                      batch_size=64), rows, labels)
        assert len(result.losses) > 0
        assert result.samples_processed == 800

    def test_requires_field_count(self):
        with pytest.raises(AIEngineError):
            PostgresPlusP().train(TrainTask(model_name="b"), [], [])

    def test_slower_than_neurdb_on_same_task(self):
        rows, labels = make_dataset(n=600)
        task_args = dict(field_count=6, epochs=1, batch_size=64)
        neurdb = AIEngine(clock=SimClock()).train(
            TrainTask(model_name="n", **task_args), rows, labels)
        pg = PostgresPlusP(clock=SimClock()).train(
            TrainTask(model_name="p", **task_args), rows, labels)
        assert pg.virtual_seconds > neurdb.virtual_seconds
        assert pg.training_throughput < neurdb.training_throughput

    def test_identical_learning_math(self):
        """Both systems train the same architecture; loss trajectories
        must be comparable in scale (systems differ, learning doesn't)."""
        rows, labels = make_dataset(n=600)
        task_args = dict(field_count=6, epochs=2, batch_size=64)
        neurdb = AIEngine(clock=SimClock()).train(
            TrainTask(model_name="n", **task_args), rows, labels)
        pg = PostgresPlusP(clock=SimClock()).train(
            TrainTask(model_name="p", **task_args), rows, labels)
        assert abs(neurdb.losses[-1] - pg.losses[-1]) < 0.2

    def test_infer_charges_clock(self):
        rows, labels = make_dataset(n=100)
        baseline = PostgresPlusP()
        result = baseline.train(
            TrainTask(model_name="b", field_count=6, batch_size=64),
            rows, labels)
        before = baseline.clock.now
        baseline.infer(result.details["model"], rows[:10])
        assert baseline.clock.now > before


class TestReporting:
    def test_format_table_alignment(self):
        text = format_table(["a", "bb"], [[1, 2.5], ["xy", 12345.0]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert "12,345" in text

    def test_geometric_mean(self):
        assert geometric_mean([1.0, 4.0]) == pytest.approx(2.0)
        assert geometric_mean([]) == 0.0


class TestFig6DriversSmall:
    """Tiny-scale smoke tests of the experiment drivers; full-scale shape
    assertions live in benchmarks/."""

    def test_fig6a_rows_and_direction(self):
        rows = run_fig6a(samples=2048, batch_size=512, predict_rows=256)
        assert len(rows) == 4
        by = {(r.workload, r.system): r for r in rows}
        for workload in ("E", "H"):
            assert (by[(workload, "NeurDB")].latency_seconds
                    < by[(workload, "PostgreSQL+P")].latency_seconds)
            assert (by[(workload, "NeurDB")].training_throughput
                    > by[(workload, "PostgreSQL+P")].training_throughput)

    def test_fig6b_monotone_and_ordered(self):
        rows = run_fig6b(batch_counts=(5, 10, 20), batch_size=256)
        neurdb = [r.latency_seconds for r in rows if r.system == "NeurDB"]
        baseline = [r.latency_seconds for r in rows
                    if r.system == "PostgreSQL+P"]
        assert neurdb == sorted(neurdb)
        assert all(n < b for n, b in zip(neurdb, baseline))

    def test_fig6c_incremental_update_helps(self):
        result = run_fig6c(samples_per_cluster=4096, batch_size=256)
        assert len(result.drift_points) == 4
        assert result.versions_created >= 1
        without, with_ = result.spike_means(window=4)
        assert with_ <= without
