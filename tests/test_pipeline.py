"""Fused pipeline execution: compilation structure, fused/unfused
charge-exact parity, LIMIT early exit through pipelines, and the
vectorized non-constant LIKE.

The three-way engine parity lives in test_batch_parity.py; this file
exercises the pipeline layer itself: how plans compile into pipelines
(split at the plan-level BREAKER annotations), that the fused drive loop
charges exactly what the unfused per-operator pull charges, and that a
satisfied LIMIT stops driving its source pipeline instead of scanning
the full table.
"""

from __future__ import annotations

import numpy as np
import pytest

import repro
from repro.exec import pipeline as pl
from repro.exec.executor import Executor
from repro.exec.expr import RowLayout, compile_expr, compile_expr_vector
from repro.exec.batch import RowBlock
from repro.sql import ast, parse


def _typed(rows):
    return [tuple((type(v), v) for v in row) for row in rows]


@pytest.fixture(scope="module")
def db():
    db = repro.connect()
    db.execute("CREATE TABLE t (id INT UNIQUE, grp TEXT, v FLOAT, w FLOAT, "
               "tag TEXT)")
    heap = db.catalog.table("t")
    tags = ["a%", "b_", "x", None]
    for i in range(80):
        heap.insert((i, ["red", "green", "blue"][i % 3], float(i) * 0.5,
                     float(80 - i) * 0.25, tags[i % 4]))
    db.execute("CREATE TABLE u (uid INT UNIQUE, gid INT, name TEXT)")
    uheap = db.catalog.table("u")
    for i in range(30):
        uheap.insert((i, i % 10, f"user{i}"))
    db.execute("ANALYZE")
    return db


def _program(db, sql):
    plan = db.planner.plan_select(parse(sql))
    executor = Executor(db.catalog, db.clock, engine="batch")
    return pl.compile_pipelines(executor.build(plan))


# -- compilation structure ----------------------------------------------------


class TestCompile:
    def test_scan_filter_project_is_one_pipeline(self, db):
        program = _program(db, "SELECT id, v FROM t WHERE v > 3 AND w < 15")
        assert len(program.pipelines) == 1
        root = program.root
        assert isinstance(root.source, pl.ScanSource)
        # the WHERE is pushed into the scan; projection is the one stage
        assert [type(s) for s in root.stages] == [pl.ProjectStage]
        assert root.sink is None

    def test_aggregate_breaks_the_pipeline(self, db):
        program = _program(db, "SELECT grp, sum(v) FROM t GROUP BY grp")
        assert len(program.pipelines) == 2
        feeder, out = program.pipelines
        assert isinstance(feeder.sink, pl.AggregateSink)
        assert isinstance(out.source, pl.SinkSource)
        assert out.inputs == [feeder]

    def test_sort_over_aggregate_is_three_pipelines(self, db):
        program = _program(
            db, "SELECT grp, sum(v) AS s FROM t GROUP BY grp ORDER BY grp")
        sinks = [type(p.sink) for p in program.pipelines]
        assert sinks == [pl.AggregateSink, pl.SortSink, type(None)]

    def test_hash_join_build_breaks_probe_fuses(self, db):
        program = _program(
            db, "SELECT t.id, u.name FROM t JOIN u ON t.id = u.uid "
                "WHERE t.v > 1")
        assert len(program.pipelines) == 2
        build, probe = program.pipelines
        assert isinstance(build.sink, pl.BuildSink)
        assert isinstance(probe.source, pl.ScanSource)
        # probe + projection fuse into the probe-side scan pipeline
        kinds = [type(s) for s in probe.stages]
        assert pl.ProbeStage in kinds and pl.ProjectStage in kinds
        assert probe.inputs == [build]

    def test_limit_is_an_early_exit_stage(self, db):
        program = _program(db, "SELECT id FROM t LIMIT 3")
        assert program.has_limit
        assert isinstance(program.root.stages[-1], pl.LimitStage)
        assert not program.root.stages[-1].parallel_safe

    def test_distinct_is_a_serial_stage(self, db):
        program = _program(db, "SELECT DISTINCT grp FROM t")
        stage = program.root.stages[-1]
        assert isinstance(stage, pl.DistinctStage)
        assert not stage.parallel_safe

    def test_breaker_annotations_on_plan_nodes(self):
        from repro.plan import logical as plan
        assert plan.Filter.STREAMING and plan.Project.STREAMING
        for breaker in (plan.Aggregate, plan.Sort, plan.HashJoin,
                        plan.NestedLoopJoin, plan.Distinct, plan.Limit):
            assert breaker.BREAKER
        assert not plan.SeqScan.BREAKER and not plan.SeqScan.STREAMING


# -- fused vs unfused parity --------------------------------------------------

EXACT_QUERIES = [
    "SELECT * FROM t",
    "SELECT id, v FROM t WHERE v > 3 AND w < 15",
    "SELECT id * 2 + 1, grp FROM t WHERE w >= 5",
    "SELECT grp, count(*), sum(v), avg(w) FROM t WHERE v > 1 GROUP BY grp",
    "SELECT * FROM t ORDER BY grp DESC, id",
    "SELECT DISTINCT grp FROM t",
    "SELECT id FROM t LIMIT 5",
    "SELECT id FROM t WHERE v > 2 LIMIT 4 OFFSET 2",
    "SELECT t.id, u.name FROM t JOIN u ON t.id = u.uid WHERE t.v > 1",
    "SELECT count(*) FROM t JOIN u ON t.id = u.uid",
    "SELECT grp, count(*) FROM t GROUP BY grp ORDER BY grp LIMIT 2",
    "SELECT 1 + 2",
    # serial-fallback operators: lazy child pipelines keep the unfused
    # pull order (and its early-exit) exactly
    "SELECT count(*) FROM t, u",
    "SELECT t.id, u.uid FROM t, u LIMIT 7",
]


@pytest.mark.parametrize("sql", EXACT_QUERIES)
def test_fused_matches_unfused_rows_and_charges(db, sql):
    """The fused drive loop makes the same multiset of charges in the
    same order as the per-operator pull: rows, types, order, and charged
    virtual time all agree (joins may reorder child execution, hence the
    tight approx rather than ==)."""
    plan = db.planner.plan_select(parse(sql))
    unfused = Executor(db.catalog, db.clock, engine="batch", fused=False)
    fused = Executor(db.catalog, db.clock, engine="batch")
    expected = unfused.run(plan)
    got = fused.run(plan)
    assert got.columns == expected.columns
    assert _typed(got.rows) == _typed(expected.rows)
    assert got.virtual_seconds == pytest.approx(
        expected.virtual_seconds, rel=1e-9, abs=1e-12)


def test_rows_out_matches_unfused(db):
    sql = "SELECT id, v FROM t WHERE v > 3"
    plan = db.planner.plan_select(parse(sql))
    unfused = Executor(db.catalog, db.clock, engine="batch", fused=False)
    fused = Executor(db.catalog, db.clock, engine="batch")
    op_a = unfused.build(plan)
    op_b = fused.build(plan)
    assert len(list(unfused.iter_rows(op_a))) == \
        len(list(fused.iter_rows(op_b)))
    assert op_a.rows_out == op_b.rows_out
    assert op_a._child.rows_out == op_b._child.rows_out


def test_with_engine_carries_fusion_flag(db):
    executor = Executor(db.catalog, db.clock, engine="parallel", fused=False)
    assert executor.with_engine("batch").fused is False


def test_pipeline_description_in_result_extra(db):
    result = Executor(db.catalog, db.clock, engine="batch").run(
        db.planner.plan_select(parse("SELECT grp, sum(v) FROM t GROUP BY grp")))
    assert result.extra["pipeline"]["pipelines"] == \
        ["Scan→Aggregate!", "Sink"]


# -- LIMIT early exit ---------------------------------------------------------


def test_limit_stops_driving_source_pipeline():
    """A satisfied LIMIT above a join probe must stop the probe-side scan
    mid-table: no push-down reaches through a join, so before pipelines
    the only protection was generator laziness — the fused driver must
    preserve it.  Charged time is a fraction of the full-scan run."""
    db = repro.connect()
    db.execute("CREATE TABLE small (sid INT UNIQUE, tag TEXT)")
    db.execute("CREATE TABLE big (bid INT UNIQUE, sid INT, x FLOAT)")
    sheap = db.catalog.table("small")
    for i in range(20):
        sheap.insert((i, f"tag{i}"))
    bheap = db.catalog.table("big")
    for i in range(20_000):
        bheap.insert((i, i % 20, float(i)))
    db.execute("ANALYZE")
    sql = ("SELECT s.tag, b.x FROM small s JOIN big b ON s.sid = b.sid "
           "LIMIT 3")
    full_sql = sql.replace(" LIMIT 3", "")
    executor = Executor(db.catalog, db.clock, engine="batch")

    limited = executor.run(db.planner.plan_select(parse(sql)))
    full = executor.run(db.planner.plan_select(parse(full_sql)))
    assert len(limited.rows) == 3
    assert limited.rows == full.rows[:3]
    # early exit: the probe scan stopped after its first block instead
    # of grinding through all 20k rows
    assert limited.virtual_seconds < 0.5 * full.virtual_seconds

    row_limited = Executor(db.catalog, db.clock, engine="row").run(
        db.planner.plan_select(parse(sql)))
    assert limited.rows == row_limited.rows

    # LIMIT plans keep the unfused engines' scan-block boundaries, so
    # fused and unfused charge identical virtual time even where no
    # push-down reaches the scan
    unfused = Executor(db.catalog, db.clock, engine="batch", fused=False)
    unfused_limited = unfused.run(db.planner.plan_select(parse(sql)))
    assert unfused_limited.rows == limited.rows
    assert limited.virtual_seconds == pytest.approx(
        unfused_limited.virtual_seconds, rel=1e-9, abs=1e-12)


def test_limit_over_nested_loop_join_stays_lazy():
    """LIMIT above a serial-fallback operator (NestedLoopJoin): the fused
    driver hands the operator lazy child pipelines, so a satisfied LIMIT
    abandons the lazily-pulled side mid-scan and charges exactly what the
    unfused engine (generator laziness) charges."""
    db = repro.connect()
    db.execute("CREATE TABLE wide1 (x INT)")
    db.execute("CREATE TABLE tiny (y INT)")
    heap = db.catalog.table("wide1")
    for i in range(5000):
        heap.insert((i,))
    tiny = db.catalog.table("tiny")
    for i in range(4):
        tiny.insert((i,))
    db.execute("ANALYZE")
    sql = "SELECT x, y FROM wide1, tiny LIMIT 3"
    plan = db.planner.plan_select(parse(sql))
    unfused = Executor(db.catalog, db.clock, engine="batch", fused=False)
    fused = Executor(db.catalog, db.clock, engine="batch")
    expected = unfused.run(plan)
    got = fused.run(plan)
    assert got.rows == expected.rows
    assert got.virtual_seconds == pytest.approx(
        expected.virtual_seconds, rel=1e-9, abs=1e-12)
    # and both stopped early: nowhere near the full 20k-pair cross join
    full = fused.run(db.planner.plan_select(
        parse("SELECT count(*) FROM wide1, tiny")))
    assert got.virtual_seconds < 0.5 * full.virtual_seconds


def test_limit_pushdown_charges_match_row_engine():
    """LIMIT over a streaming chain still rides the push-down: the fused
    scan uses the pushed max_batch_rows, so charges stay within the
    documented offset+limit+1 bound of the row engine."""
    from repro.common.simtime import CostModel
    db = repro.connect()
    db.execute("CREATE TABLE f (id INT, v INT)")
    heap = db.catalog.table("f")
    for i in range(5000):
        heap.insert((i, i % 10))
    db.execute("ANALYZE")
    plan = db.planner.plan_select(
        parse("SELECT id FROM f WHERE v = 3 LIMIT 2"))
    row = Executor(db.catalog, db.clock, engine="row").run(plan)
    fused = Executor(db.catalog, db.clock, engine="batch").run(plan)
    assert fused.rows == row.rows
    bound = 3 * (CostModel.TUPLE_CPU + CostModel.EVAL_PREDICATE)
    assert fused.virtual_seconds <= row.virtual_seconds + bound


# -- deferred selection masks -------------------------------------------------


def test_block_carrier_defers_selection():
    layout = RowLayout([("t", "a"), ("t", "b")])
    block = RowBlock.from_rows(layout, [(1, "x"), (2, "y"), (3, "z")])
    carrier = pl.BlockCarrier(block, np.array([True, False, True]))
    assert carrier.count == 2
    assert carrier.block is block          # not yet copied
    out = carrier.materialize()
    assert out.to_rows() == [(1, "x"), (3, "z")]
    assert carrier.materialize() is out    # idempotent


def test_projection_applies_mask_only_to_projected_columns(db):
    """Projection off a deferred mask copies only projected columns and
    produces the same rows as select-then-project."""
    plan = db.planner.plan_select(parse("SELECT id FROM t WHERE v > 10"))
    fused = Executor(db.catalog, db.clock, engine="batch").run(plan)
    unfused = Executor(db.catalog, db.clock, engine="batch",
                       fused=False).run(plan)
    row = Executor(db.catalog, db.clock, engine="row").run(plan)
    assert _typed(fused.rows) == _typed(unfused.rows) == _typed(row.rows)


# -- vectorized non-constant LIKE --------------------------------------------


def _eval_both(expr, layout, rows):
    """(vector result, row-reference result) for one expression."""
    vector = compile_expr_vector(expr, layout)
    assert vector is not None, "expected the expression to lower"
    block = RowBlock.from_rows(layout, rows)
    values, null = vector(block)
    row_eval = compile_expr(expr, layout)
    reference = [row_eval(r) for r in rows]
    got = [None if null[i] else bool(values[i]) for i in range(len(rows))]
    return got, reference


class TestDynamicLike:
    layout = RowLayout([("t", "name"), ("t", "pat")])

    def test_column_pattern_matches_row_semantics(self):
        expr = ast.BinaryOp("LIKE", ast.ColumnRef("name"),
                            ast.ColumnRef("pat"))
        rows = [("alpha", "a%"), ("beta", "a%"), ("beta", "b_ta"),
                ("x", "x"), ("x.y", "x.y"), ("xzy", "x.y"),
                (None, "a%"), ("alpha", None), (5.0, "5.0"), (5, "5.0")]
        got, reference = _eval_both(expr, self.layout, rows)
        assert got == reference
        assert reference == [True, False, True, True, True, False,
                             None, None, True, False]

    def test_computed_left_operand_lowers(self):
        expr = ast.BinaryOp(
            "LIKE", ast.FuncCall("upper", (ast.ColumnRef("name"),)),
            ast.Literal("AL%"))
        got, reference = _eval_both(expr, self.layout,
                                    [("alpha", ""), ("beta", "")])
        assert got == reference == [True, False]

    def test_matcher_cache_reused_per_pattern_value(self):
        """Repeated pattern values compile one matcher each (the row path
        re-translates per row); correctness over many blocks."""
        expr = ast.BinaryOp("LIKE", ast.ColumnRef("name"),
                            ast.ColumnRef("pat"))
        rows = [(f"user{i}", "user%" if i % 2 else "user_")
                for i in range(500)]
        got, reference = _eval_both(expr, self.layout, rows)
        assert got == reference

    def test_numeric_computed_operand_falls_back(self, db):
        """A numerically-computed LIKE operand must defer to the row
        engine (str() of a float64 view could disagree): end-to-end
        parity across engines is the contract."""
        sql = "SELECT id FROM t WHERE (v + 1) LIKE '1%'"
        plan = db.planner.plan_select(parse(sql))
        row = Executor(db.catalog, db.clock, engine="row").run(plan)
        batch = Executor(db.catalog, db.clock, engine="batch").run(plan)
        assert _typed(batch.rows) == _typed(row.rows)

    def test_non_constant_like_parity_across_engines(self, db):
        for sql in ("SELECT id FROM t WHERE grp LIKE tag",
                    "SELECT id FROM t WHERE lower(grp) LIKE 'r%'",
                    "SELECT id FROM t WHERE coalesce(tag, grp) LIKE '%e%'"):
            plan = db.planner.plan_select(parse(sql))
            expected = Executor(db.catalog, db.clock, engine="row").run(plan)
            for engine in ("batch", "parallel"):
                got = Executor(db.catalog, db.clock, engine=engine,
                               workers=3, morsel_rows=16).run(plan)
                assert _typed(got.rows) == _typed(expected.rows)
                assert got.virtual_seconds == pytest.approx(
                    expected.virtual_seconds, rel=1e-6, abs=1e-9)


def test_literal_vector_cache_reuses_arrays():
    layout = RowLayout([("t", "x")])
    vector = compile_expr_vector(ast.Literal(3.5), layout)
    block = RowBlock.from_rows(layout, [(1,), (2,)])
    first = vector(block)
    second = vector(block)
    assert first[0] is second[0]  # length-keyed cache hit
    other = RowBlock.from_rows(layout, [(1,), (2,), (3,)])
    assert len(vector(other)[0]) == 3
