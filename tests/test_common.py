"""Tests for repro.common: clock, cost model, RNG utilities, errors."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common import (
    CostModel,
    NeurDBError,
    ParseError,
    SimClock,
    TransactionAborted,
    make_rng,
    stable_hash,
    zipf_sample,
)
from repro.common.simtime import BudgetExceeded


class TestSimClock:
    def test_starts_at_zero(self):
        assert SimClock().now == 0.0

    def test_advance_accumulates(self):
        clock = SimClock()
        clock.advance(1.5)
        clock.advance(0.5)
        assert clock.now == pytest.approx(2.0)

    def test_advance_returns_new_time(self):
        clock = SimClock()
        assert clock.advance(3.0) == pytest.approx(3.0)

    def test_negative_advance_rejected(self):
        with pytest.raises(ValueError):
            SimClock().advance(-1.0)

    def test_category_totals(self):
        clock = SimClock()
        clock.advance(1.0, "io")
        clock.advance(2.0, "cpu")
        clock.advance(3.0, "io")
        assert clock.category_total("io") == pytest.approx(4.0)
        assert clock.category_total("cpu") == pytest.approx(2.0)
        assert clock.category_total("missing") == 0.0

    def test_breakdown_is_copy(self):
        clock = SimClock()
        clock.advance(1.0, "io")
        breakdown = clock.breakdown()
        breakdown["io"] = 999.0
        assert clock.category_total("io") == pytest.approx(1.0)

    def test_advance_to_moves_forward_only(self):
        clock = SimClock()
        clock.advance_to(5.0)
        assert clock.now == pytest.approx(5.0)
        clock.advance_to(3.0)  # in the past: no-op
        assert clock.now == pytest.approx(5.0)

    def test_reset(self):
        clock = SimClock()
        clock.advance(7.0, "x")
        clock.reset()
        assert clock.now == 0.0
        assert clock.category_total("x") == 0.0

    def test_budget_limit_raises(self):
        clock = SimClock()
        clock.set_limit(1.0)
        clock.advance(0.9)
        with pytest.raises(BudgetExceeded):
            clock.advance(0.2)

    def test_budget_limit_cleared(self):
        clock = SimClock()
        clock.set_limit(1.0)
        clock.set_limit(None)
        clock.advance(100.0)  # no raise
        assert clock.now == pytest.approx(100.0)

    @given(st.lists(st.floats(min_value=0, max_value=1e3), max_size=30))
    @settings(max_examples=25)
    def test_now_equals_sum_of_advances(self, increments):
        clock = SimClock()
        for inc in increments:
            clock.advance(inc)
        assert clock.now == pytest.approx(sum(increments))


class TestLaneSchedule:
    def test_serial_lane_queues(self):
        from repro.common.simtime import LaneSchedule
        lanes = LaneSchedule(1)
        assert lanes.assign(0.0, 2.0) == (0, 0.0, 2.0)
        assert lanes.assign(1.0, 2.0) == (0, 2.0, 4.0)  # queued behind
        assert lanes.assign(9.0, 1.0) == (0, 9.0, 10.0)  # lane idled
        assert lanes.makespan() == 10.0
        assert lanes.busy_time() == 5.0

    def test_earliest_free_lane_wins(self):
        from repro.common.simtime import LaneSchedule
        lanes = LaneSchedule(2)
        assert lanes.assign(0.0, 4.0)[0] == 0
        assert lanes.assign(0.0, 1.0)[0] == 1
        lane, start, completion = lanes.assign(0.0, 1.0)
        assert (lane, start, completion) == (1, 1.0, 2.0)
        assert lanes.makespan() == 4.0

    def test_validation(self):
        from repro.common.simtime import LaneSchedule
        with pytest.raises(ValueError):
            LaneSchedule(0)
        with pytest.raises(ValueError):
            LaneSchedule(1).assign(0.0, -1.0)


class TestCostModel:
    def test_page_read_dwarfs_hit(self):
        assert CostModel.PAGE_READ > 10 * CostModel.PAGE_HIT

    def test_training_dominates_inference(self):
        assert (CostModel.TRAIN_STEP_PER_SAMPLE
                > CostModel.INFER_PER_SAMPLE)

    def test_finetune_cheaper_than_train(self):
        assert (CostModel.FINETUNE_STEP_PER_SAMPLE
                < CostModel.TRAIN_STEP_PER_SAMPLE)

    def test_spill_factor_meaningful(self):
        assert CostModel.HASH_SPILL_FACTOR >= 2.0


class TestRng:
    def test_make_rng_from_seed_deterministic(self):
        a = make_rng(7).random(5)
        b = make_rng(7).random(5)
        assert np.array_equal(a, b)

    def test_make_rng_passthrough(self):
        gen = np.random.default_rng(0)
        assert make_rng(gen) is gen

    def test_make_rng_none_uses_default_seed(self):
        """No unseeded escape hatch: None means DEFAULT_SEED, never OS
        entropy, so two None generators agree with each other and with
        an explicit make_rng(DEFAULT_SEED)."""
        from repro.common.rng import DEFAULT_SEED
        a = make_rng(None).random(5)
        b = make_rng(None).random(5)
        c = make_rng(DEFAULT_SEED).random(5)
        assert np.array_equal(a, b)
        assert np.array_equal(a, c)

    def test_zipf_uniform_when_theta_zero(self):
        rng = make_rng(0)
        samples = zipf_sample(rng, 10, theta=0.0, size=20_000)
        counts = np.bincount(samples, minlength=10)
        assert counts.min() > 0.8 * counts.max()

    def test_zipf_skewed_when_theta_high(self):
        rng = make_rng(0)
        samples = zipf_sample(rng, 100, theta=1.2, size=20_000)
        counts = np.bincount(samples, minlength=100)
        # rank 0 must dominate rank 50 heavily
        assert counts[0] > 10 * max(1, counts[50])

    def test_zipf_rejects_empty_domain(self):
        with pytest.raises(ValueError):
            zipf_sample(make_rng(0), 0, 0.5)

    def test_stable_hash_deterministic_across_calls(self):
        assert stable_hash(("a", 1), 100) == stable_hash(("a", 1), 100)

    def test_stable_hash_in_range(self):
        for value in ["x", 123, ("a", 2.5), None]:
            assert 0 <= stable_hash(value, 17) < 17

    @given(st.text(max_size=30), st.integers(min_value=1, max_value=1000))
    @settings(max_examples=50)
    def test_stable_hash_property(self, value, buckets):
        h = stable_hash(value, buckets)
        assert 0 <= h < buckets
        assert h == stable_hash(value, buckets)


class TestErrors:
    def test_hierarchy(self):
        assert issubclass(ParseError, NeurDBError)
        assert issubclass(TransactionAborted, NeurDBError)

    def test_transaction_aborted_reason(self):
        err = TransactionAborted("deadlock", "txn 1 vs txn 2")
        assert err.reason == "deadlock"
        assert "deadlock" in str(err)

    def test_parse_error_position(self):
        err = ParseError("bad token", position=12)
        assert err.position == 12
