"""Observability: tracing bit-identity, charge reconciliation, the
metrics registry, structured warning events, and the trace exports.

The two invariants of docs/observability.md:

* **Bit-identity** — attaching a tracer changes nothing: result rows and
  the clock's per-category charged totals are *exactly* equal (``==`` on
  floats) with and without tracing, on every engine at several worker
  counts.  Two identically-built databases run the same statement
  stream, one traced and one not, and must end in identical clock
  states.
* **Reconciliation** — the tracer's float mirror equals the shared
  clock's ``breakdown()``/``now`` bitwise at all times, and per-operator
  fixed-point span sums equal the trace totals with integer ``==`` (no
  silently unattributed charges for a pure SELECT).
"""

from __future__ import annotations

import json

import pytest

import repro
from repro.common.faults import FaultPlan
from repro.exec.executor import Executor
from repro.obs.export import chrome_trace, dump_chrome_trace
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import Tracer, from_fix, to_fix
from repro.sql import parse

# every engine the executor exposes, at the worker counts the issue
# gates on (workers only matter for the parallel engine)
ENGINE_CONFIGS = [
    ("row", {}),
    ("batch", {}),
    ("batch", {"fused": False}),
    ("parallel", {"workers": 1}),
    ("parallel", {"workers": 2}),
    ("parallel", {"workers": 4}),
]

TRACE_QUERIES = [
    "SELECT * FROM users WHERE age > 25",
    "SELECT city, count(*), sum(age) FROM users GROUP BY city",
    "SELECT u.name, o.amount FROM users u JOIN orders o "
    "ON u.id = o.user_id WHERE o.amount > 50",
    "SELECT u.city AS city, count(*) AS n, sum(o.amount) AS amt, "
    "max(t.price) AS top FROM users u "
    "JOIN orders o ON u.id = o.user_id "
    "JOIN items t ON o.item_id = t.iid "
    "WHERE o.amount > 20 GROUP BY u.city ORDER BY city",
]


def _build_db(tracing: bool = False):
    db = repro.connect(tracing=tracing)
    db.execute("CREATE TABLE users (id INT UNIQUE, name TEXT, age INT, "
               "city TEXT)")
    db.execute("CREATE TABLE orders (oid INT UNIQUE, user_id INT, "
               "amount FLOAT, item_id INT)")
    db.execute("CREATE TABLE items (iid INT UNIQUE, label TEXT, "
               "price FLOAT)")
    for i in range(40):
        db.execute(f"INSERT INTO users VALUES ({i}, 'user{i}', "
                   f"{20 + i % 30}, 'c{i % 4}')")
    for i in range(30):
        db.execute(f"INSERT INTO items VALUES ({i}, 'item{i}', "
                   f"{round(1.5 * i, 2)})")
    for i in range(120):
        db.execute(f"INSERT INTO orders VALUES ({i}, {i % 40}, "
                   f"{round(i * 2.0 + 1, 2)}, {i % 30})")
    db.execute("ANALYZE")
    return db


def _typed(rows):
    return [tuple((type(v), v) for v in row) for row in rows]


# -- bit-identity --------------------------------------------------------------


class TestTracingBitIdentity:
    @pytest.mark.parametrize("engine,kwargs", ENGINE_CONFIGS,
                             ids=[f"{e}-{k}" for e, k in ENGINE_CONFIGS])
    def test_rows_and_charges_identical(self, engine, kwargs):
        """Same build + same statement stream, traced vs untraced: rows
        and the final clock state must be exactly equal."""
        plain = _build_db(tracing=False)
        traced = _build_db(tracing=True)
        assert traced.clock.tracer is not None
        assert plain.clock.tracer is None

        for db in (plain, traced):
            db.executor = Executor(db.catalog, db.clock, engine=engine,
                                   registry=db.registry, **kwargs)
        for sql in TRACE_QUERIES:
            rows_plain = plain.execute(sql).rows
            rows_traced = traced.execute(sql).rows
            assert _typed(rows_traced) == _typed(rows_plain), sql

        assert traced.clock.now == plain.clock.now
        assert dict(traced.clock.breakdown()) == dict(
            plain.clock.breakdown())
        # the session tracer reconciles with its clock the whole way
        tracer = traced.clock.tracer
        assert tracer.float_totals() == dict(traced.clock.breakdown())
        assert tracer.float_now == traced.clock.now


# -- reconciliation ------------------------------------------------------------


class TestReconciliation:
    @pytest.mark.parametrize("engine,kwargs", ENGINE_CONFIGS,
                             ids=[f"{e}-{k}" for e, k in ENGINE_CONFIGS])
    def test_operator_spans_cover_fix_totals(self, engine, kwargs):
        """Per-operator fixed-point sums equal the trace totals with
        integer ``==`` — nothing a pure SELECT charges escapes operator
        attribution, on any engine."""
        db = _build_db()
        for sql in TRACE_QUERIES:
            executor = Executor(db.catalog, db.clock, engine=engine,
                                registry=db.registry, **kwargs)
            plan = db.planner.plan_select(parse(sql))
            executor.run(plan)  # warm caches outside the trace
            tracer = Tracer()
            tracer.attach(db.clock)
            try:
                executor.run(plan)
            finally:
                Tracer.detach(db.clock)
            totals = tracer.fix_totals()
            attributed: dict[str, int] = {}
            for span in tracer.operator_spans():
                for category, fix in span.fix.items():
                    attributed[category] = (
                        attributed.get(category, 0) + fix)
            assert attributed == totals, sql
            # the float mirror tracks the shared clock bitwise
            assert tracer.float_totals() == dict(db.clock.breakdown())
            assert tracer.float_now == db.clock.now

    def test_mirror_tracks_clock_through_session(self):
        """A session tracer (attached before any work) mirrors the clock
        exactly through DDL, inserts, ANALYZE, and queries."""
        db = _build_db(tracing=True)
        for sql in TRACE_QUERIES:
            db.execute(sql)
        tracer = db.clock.tracer
        assert tracer.float_totals() == dict(db.clock.breakdown())
        assert tracer.float_now == db.clock.now

    def test_session_tracer_survives_scoped_statements(self):
        """EXPLAIN ANALYZE and profile() swap in statement-scoped
        tracers; the session tracer must reconcile again afterwards."""
        db = _build_db(tracing=True)
        session = db.clock.tracer
        db.execute("EXPLAIN ANALYZE SELECT count(*) FROM users")
        db.profile("SELECT city, count(*) FROM users GROUP BY city")
        assert db.clock.tracer is session
        assert session.float_totals() == dict(db.clock.breakdown())
        assert session.float_now == db.clock.now

    def test_fix_round_trip_is_exact(self):
        for value in (0.0, 1e-9, 3.5e-7, 0.125, 1.0, 123.456):
            assert from_fix(to_fix(value)) == value
        # associativity: the whole point of the fixed-point books
        parts = [1e-9, 3e-10, 2.5e-7, 1.7e-8] * 10
        left = sum(to_fix(p) for p in parts)
        right = sum(to_fix(p) for p in reversed(parts))
        assert left == right


# -- span structure ------------------------------------------------------------


class TestSpans:
    def test_worker_task_spans_on_parallel_engine(self):
        db = _build_db()
        executor = Executor(db.catalog, db.clock, engine="parallel",
                            workers=2, morsel_rows=16,
                            registry=db.registry)
        plan = db.planner.plan_select(parse(TRACE_QUERIES[1]))
        tracer = Tracer()
        tracer.attach(db.clock)
        try:
            executor.run(plan)
        finally:
            Tracer.detach(db.clock)
        tasks = tracer.spans_of_kind("task")
        assert tasks, "parallel run produced no worker task spans"
        for span in tasks:
            assert span.start is not None and span.end is not None
            assert span.end >= span.start
        workers = {span.attrs.get("worker") for span in tasks}
        assert len(workers) >= 1

    def test_statement_span_owns_charges(self):
        db = _build_db()
        tracer = Tracer()
        tracer.attach(db.clock)
        try:
            with tracer.span("INSERT", "statement", clock=db.clock):
                db.execute("INSERT INTO users VALUES (999, 'x', 1, 'c0')")
        finally:
            Tracer.detach(db.clock)
        statements = tracer.spans_of_kind("statement")
        assert len(statements) == 1
        span = statements[0]
        assert span.total() > 0
        assert span.end > span.start


# -- metrics registry ----------------------------------------------------------


class TestMetricsRegistry:
    def test_instruments(self):
        registry = MetricsRegistry()
        registry.counter("exec.task_retries").inc()
        registry.counter("exec.task_retries").inc(2)
        registry.gauge("serve.queue_depth").set(7)
        registry.histogram("serve.latency").observe(2e-4)
        registry.counter("faults.injected", kind="task_error").inc()
        snap = registry.snapshot()
        assert snap["counters"]["exec.task_retries"] == 3
        assert snap["counters"]["faults.injected{kind=task_error}"] == 1
        assert snap["gauges"]["serve.queue_depth"] == 7.0
        assert snap["histograms"]["serve.latency"]["count"] == 1

    def test_collectors_feed_snapshot(self):
        registry = MetricsRegistry()
        registry.add_collector(lambda: {"buffer.hit_ratio": 0.75})
        assert registry.snapshot()["gauges"]["buffer.hit_ratio"] == 0.75

    def test_db_metrics_absorbs_component_stats(self):
        db = _build_db()
        db.execute("SELECT count(*) FROM users")
        gauges = db.metrics()["gauges"]
        assert any(key.startswith("buffer.") for key in gauges)
        assert "db.query_retries_total" in gauges

    def test_fault_counts_surfaced(self):
        # seed 1 at rate 0.3 injects several task errors that the
        # scheduler's own retries absorb (no Db-level retry needed)
        plan = FaultPlan(seed=1).arm("task_error", rate=0.3)
        db = repro.connect(faults=plan)
        db.execute("CREATE TABLE t (id INT, v FLOAT)")
        for i in range(64):
            db.execute(f"INSERT INTO t VALUES ({i}, {i * 0.5})")
        db.execute("ANALYZE")
        db.executor = Executor(db.catalog, db.clock, engine="parallel",
                               workers=4, morsel_rows=8, faults=plan,
                               retry_limit=8, registry=db.registry)
        db.execute("SELECT id, v FROM t WHERE v > 1")
        gauges = db.metrics()["gauges"]
        injected = {key: value for key, value in gauges.items()
                    if key.startswith("faults.injected")}
        assert injected, "no fault-injection gauges surfaced"
        assert sum(injected.values()) == sum(plan.counts().values())


# -- structured warnings -------------------------------------------------------


class TestWarningEvents:
    def test_retry_warnings_are_structured_events(self):
        # seed 1 at rate 0.3 with no scheduler retries escalates several
        # transient failures to the Db retry loop before succeeding
        plan = FaultPlan(seed=1).arm("task_error", rate=0.3)
        db = repro.connect(faults=plan,
                           retry_policy=repro.RetryPolicy(
                               max_retries=50, backoff=1e-4))
        db.execute("CREATE TABLE t (id INT, v FLOAT)")
        for i in range(64):
            db.execute(f"INSERT INTO t VALUES ({i}, {i * 0.5})")
        db.execute("ANALYZE")
        db.executor = Executor(db.catalog, db.clock, engine="parallel",
                               workers=2, morsel_rows=16, faults=plan,
                               retry_limit=0, registry=db.registry)
        db.execute("SELECT id, v FROM t WHERE v > 1")
        assert db.query_retries >= 1
        events = db.registry.events(kind="db.retry")
        assert len(events) == db.query_retries
        for event in events:
            assert event["attempt"] >= 1
            assert event["error"]
            assert event["statement"]
            assert event["time"] is not None
        # the string accessor is a rendered view over the same events
        assert db.warnings() == db.registry.event_messages(prefix="db.")
        assert db.metrics()["counters"]["db.query_retries"] \
            == db.query_retries

    def test_warn_goes_through_registry(self):
        db = repro.connect()
        db._warn("something recovered")
        assert "something recovered" in db.warnings()
        events = db.registry.events(kind="db.warning")
        assert events and events[0]["message"] == "something recovered"


# -- chrome trace export -------------------------------------------------------


class TestChromeTraceExport:
    def test_profile_returns_trace(self):
        db = _build_db()
        result, trace = db.profile(TRACE_QUERIES[1])
        assert result.rows
        assert trace["displayTimeUnit"] == "ms"
        events = trace["traceEvents"]
        phases = {event["ph"] for event in events}
        assert "X" in phases, "no duration events in the trace"
        durations = [e for e in events if e["ph"] == "X"]
        assert all(e["dur"] >= 0 for e in durations)

    def test_profile_is_observation_only(self):
        plain = _build_db()
        profiled = _build_db()
        baseline = plain.execute(TRACE_QUERIES[3])
        result, _ = profiled.profile(TRACE_QUERIES[3])
        assert _typed(result.rows) == _typed(baseline.rows)
        assert dict(profiled.clock.breakdown()) == dict(
            plain.clock.breakdown())

    def test_dump_chrome_trace(self, tmp_path):
        db = _build_db()
        path = tmp_path / "trace.json"
        db.profile(TRACE_QUERIES[0], path=str(path))
        loaded = json.loads(path.read_text())
        assert loaded["traceEvents"]

    def test_chrome_trace_from_tracer(self):
        db = _build_db()
        tracer = Tracer()
        tracer.attach(db.clock)
        try:
            with tracer.span("q", "statement", clock=db.clock):
                db.execute(TRACE_QUERIES[0])
        finally:
            Tracer.detach(db.clock)
        trace = chrome_trace(tracer)
        assert any(e["ph"] == "X" for e in trace["traceEvents"])
        dumped = dump_chrome_trace.__name__  # exported alongside
        assert dumped == "dump_chrome_trace"


# -- serving traces ------------------------------------------------------------


class TestServingTraces:
    def _serving_db(self):
        db = repro.connect(tracing=True)
        db.execute("CREATE TABLE clicks (cid INT UNIQUE, a FLOAT, "
                   "b FLOAT, y FLOAT)")
        for i in range(120):
            a, b = (i % 10) / 10.0, (i % 7) / 7.0
            db.execute(f"INSERT INTO clicks VALUES ({i}, {a:.4f}, "
                       f"{b:.4f}, {3 * a - 2 * b + 1:.4f})")
        db.execute("ANALYZE")
        return db

    def test_request_and_batch_spans(self):
        from repro.serve import PredictServer

        db = self._serving_db()
        server = PredictServer(db)
        sql = ("PREDICT VALUE OF y FROM clicks TRAIN ON a, b "
               "VALUES (0.5, 0.5)")
        first = server.submit(sql, at=0.0)
        second = server.submit(sql, at=1.0)
        server.drain()
        assert first.error is None and second.error is None

        tracer = db.clock.tracer
        batches = tracer.spans_of_kind("batch")
        requests = tracer.spans_of_kind("request")
        assert batches and requests
        for span in requests:
            assert span.attrs["request_id"] in (first.request_id,
                                                second.request_id)
            assert span.start is not None and span.end is not None

        trace = server.request_trace(first.request_id)
        ids = {event.get("args", {}).get("request_id")
               for event in trace["traceEvents"]}
        assert first.request_id in ids
        assert second.request_id not in ids

    def test_server_stats_in_registry(self):
        from repro.serve import PredictServer

        db = self._serving_db()
        server = PredictServer(db)
        server.submit("PREDICT VALUE OF y FROM clicks TRAIN ON a, b "
                      "VALUES (0.2, 0.8)", at=0.0)
        server.drain()
        gauges = db.metrics()["gauges"]
        assert any(key.startswith("serve.") for key in gauges)
        # the legacy accessor still works as a thin view
        stats = server.stats()
        assert stats["requests"] == 1 and stats["failed"] == 0


# -- bench metadata ------------------------------------------------------------


class TestBenchMetadata:
    def test_write_bench_json_stamps_meta(self, tmp_path):
        from repro.bench.reporting import (BENCH_SCHEMA_VERSION,
                                           write_bench_json)

        path = tmp_path / "BENCH_x.json"
        stamped = write_bench_json(
            str(path), {"result": 1}, smoke=True,
            seeds={"numpy_rng": 7}, workload={"rows": 100})
        loaded = json.loads(path.read_text())
        assert loaded == stamped
        meta = loaded["meta"]
        assert meta["schema_version"] == BENCH_SCHEMA_VERSION
        assert meta["smoke"] is True
        assert meta["seeds"] == {"numpy_rng": 7}
        assert meta["workload"] == {"rows": 100}
        assert loaded["result"] == 1
