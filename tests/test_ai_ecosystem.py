"""Tests for the in-database AI ecosystem: streaming protocol, loader,
model manager (incremental updates), monitor, ARM-Net, AI engine."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ai import (
    AIEngine,
    ARMNet,
    Channel,
    FeatureHasher,
    FineTuneTask,
    Frame,
    FrameType,
    InferenceTask,
    ModelManager,
    ModelSelectionTask,
    Monitor,
    StreamConfig,
    StreamSender,
    StreamingDataLoader,
    TrainTask,
    decode_batch,
    decode_handshake,
    encode_batch,
    encode_handshake,
)
from repro.ai.streaming import decode_credit, decode_renegotiate, encode_credit, encode_renegotiate
from repro.common.errors import ModelNotFound, StreamProtocolError
from repro.common.simtime import SimClock

RNG = np.random.default_rng(0)


def make_dataset(n=600, fields=5, seed=3):
    rng = np.random.default_rng(seed)
    rows = [[float(v) for v in rng.integers(0, 15, fields)]
            for _ in range(n)]
    weights = rng.standard_normal(fields)
    logits = np.array([sum(r[j] * weights[j] for j in range(fields))
                       for r in rows]) / 8 - 0.5
    labels = (rng.random(n) < 1 / (1 + np.exp(-logits))).astype(float)
    return rows, labels


class TestFrames:
    def test_frame_roundtrip(self):
        frame = Frame(FrameType.DATA_BATCH, b"payload")
        assert Frame.decode(frame.encode()).payload == b"payload"

    def test_frame_truncated(self):
        with pytest.raises(StreamProtocolError):
            Frame.decode(b"\x01")

    def test_frame_length_mismatch(self):
        good = Frame(FrameType.RESULT, b"abc").encode()
        with pytest.raises(StreamProtocolError):
            Frame.decode(good + b"extra")

    def test_handshake_roundtrip(self):
        config = StreamConfig(window_batches=7, batch_size=123)
        frame = encode_handshake({"field_count": 4}, config)
        spec, decoded = decode_handshake(frame)
        assert spec == {"field_count": 4}
        assert decoded.window_batches == 7
        assert decoded.batch_size == 123

    def test_batch_roundtrip(self):
        ids = RNG.integers(0, 100, (16, 4))
        targets = RNG.random(16)
        out_ids, out_targets = decode_batch(encode_batch(ids, targets))
        assert np.array_equal(out_ids, ids)
        assert np.allclose(out_targets, targets)

    def test_credit_roundtrip(self):
        assert decode_credit(encode_credit(5)) == 5

    def test_renegotiate_roundtrip(self):
        config = StreamConfig(window_batches=3)
        assert decode_renegotiate(
            encode_renegotiate(config)).window_batches == 3

    def test_wrong_frame_type_rejected(self):
        frame = encode_credit(1)
        with pytest.raises(StreamProtocolError):
            decode_batch(frame)

    @given(st.integers(1, 50), st.integers(1, 8))
    @settings(max_examples=20, deadline=None)
    def test_batch_roundtrip_property(self, rows, cols):
        ids = RNG.integers(0, 1000, (rows, cols))
        targets = RNG.random(rows)
        out_ids, out_targets = decode_batch(encode_batch(ids, targets))
        assert np.array_equal(out_ids, ids)
        assert np.allclose(out_targets, targets)


class TestChannelAndFlowControl:
    def test_channel_fifo(self):
        channel = Channel(SimClock())
        channel.send(Frame(FrameType.RESULT, b"1"))
        channel.send(Frame(FrameType.RESULT, b"2"))
        assert channel.recv().payload == b"1"
        assert channel.recv().payload == b"2"

    def test_recv_empty_raises(self):
        with pytest.raises(StreamProtocolError):
            Channel(SimClock()).recv()

    def test_send_charges_clock(self):
        clock = SimClock()
        channel = Channel(clock)
        channel.send(Frame(FrameType.DATA_BATCH, b"x" * 1000))
        assert clock.now > 0

    def test_window_overflow(self):
        channel = Channel(SimClock())
        sender = StreamSender(channel, StreamConfig(window_batches=2))
        ids, targets = np.zeros((1, 1), dtype=np.int64), np.zeros(1)
        sender.send_batch(ids, targets)
        sender.send_batch(ids, targets)
        with pytest.raises(StreamProtocolError):
            sender.send_batch(ids, targets)

    def test_credit_opens_window(self):
        channel = Channel(SimClock())
        sender = StreamSender(channel, StreamConfig(window_batches=1))
        ids, targets = np.zeros((1, 1), dtype=np.int64), np.zeros(1)
        sender.send_batch(ids, targets)
        sender.credit_received(1)
        sender.send_batch(ids, targets)  # allowed again
        assert sender.in_flight == 1

    def test_stats_accumulate(self):
        channel = Channel(SimClock())
        sender = StreamSender(channel, StreamConfig())
        sender.handshake({"field_count": 2})
        sender.send_batch(np.zeros((4, 2), dtype=np.int64), np.zeros(4))
        sender.finish()
        assert channel.stats.handshakes == 1
        assert channel.stats.batches_sent == 1
        assert channel.stats.frames_sent == 3
        assert channel.stats.bytes_sent > 0

    def test_renegotiation_counted(self):
        channel = Channel(SimClock())
        sender = StreamSender(channel, StreamConfig())
        sender.renegotiate(StreamConfig(window_batches=5))
        assert channel.stats.renegotiations == 1


class TestFeatureHasher:
    def test_deterministic(self):
        hasher = FeatureHasher(3, 100)
        rows = [[1.0, 2.0, 3.0]]
        assert np.array_equal(hasher.transform(rows),
                              hasher.transform(rows))

    def test_field_mixing(self):
        hasher = FeatureHasher(2, 10_000)
        ids = hasher.transform([[7.0, 7.0]])
        assert ids[0, 0] != ids[0, 1]  # same value, different fields

    def test_vectorized_and_range(self):
        hasher = FeatureHasher(4, 256)
        rows = RNG.random((50, 4)) * 100
        ids = hasher.transform(rows)
        assert ids.shape == (50, 4)
        assert ids.min() >= 0 and ids.max() < 256

    def test_string_rows(self):
        hasher = FeatureHasher(2, 100)
        ids = hasher.transform([["a", "b"], ["a", "c"]])
        assert ids[0, 0] == ids[1, 0]
        assert ids[0, 1] != ids[1, 1] or True  # collisions allowed

    def test_wrong_arity(self):
        hasher = FeatureHasher(3, 10)
        with pytest.raises(ValueError):
            hasher.transform([[1.0, 2.0]])

    def test_empty(self):
        hasher = FeatureHasher(3, 10)
        assert hasher.transform([]).shape == (0, 3)


class TestStreamingDataLoader:
    def test_batches_cover_all_rows(self):
        rows, labels = make_dataset(250)
        loader = StreamingDataLoader(rows, labels, FeatureHasher(5),
                                     batch_size=64, window_batches=2)
        total = sum(len(t) for _, t in loader)
        assert total == 250

    def test_last_batch_partial(self):
        rows, labels = make_dataset(130)
        loader = StreamingDataLoader(rows, labels, FeatureHasher(5),
                                     batch_size=64, window_batches=4)
        sizes = [len(t) for _, t in loader]
        assert sizes == [64, 64, 2]

    def test_window_bounded(self):
        rows, labels = make_dataset(600)
        loader = StreamingDataLoader(rows, labels, FeatureHasher(5),
                                     batch_size=10, window_batches=3)
        loader.fill_window()
        assert loader.window_fill == 3

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            StreamingDataLoader([], [], FeatureHasher(1), batch_size=0)
        with pytest.raises(ValueError):
            StreamingDataLoader([], [], FeatureHasher(1), window_batches=0)


class TestModelManager:
    def _model(self, seed=0):
        return ARMNet(field_count=3, embed_dim=4, num_cross=2,
                      hidden_dim=8, buckets=64, seed=seed)

    def test_register_and_load_roundtrip(self):
        manager = ModelManager()
        model = self._model()
        manager.register_model("m", model)
        loaded = manager.load_model("m")
        rows = [[1.0, 2.0, 3.0]]
        assert np.allclose(model.predict(rows), loaded.predict(rows))

    def test_duplicate_registration_rejected(self):
        manager = ModelManager()
        manager.register_model("m", self._model())
        with pytest.raises(ValueError):
            manager.register_model("m", self._model())

    def test_missing_model(self):
        with pytest.raises(ModelNotFound):
            ModelManager().load_model("ghost")

    def test_incremental_update_creates_version(self):
        manager = ModelManager()
        model = self._model()
        t1 = manager.register_model("m", model)
        model.head1.weight.data += 1.0
        t2 = manager.incremental_update("m", model, ["head1"])
        assert t2 > t1
        assert manager.versions("m") == [t1, t2]

    def test_version_resolution_rule(self):
        """Fig. 3: a view at time t assembles newest layer <= t per LID."""
        manager = ModelManager()
        model = self._model()
        t1 = manager.register_model("m", model)
        original_head = model.head1.weight.data.copy()
        model.head1.weight.data += 5.0
        t2 = manager.incremental_update("m", model, ["head1"])

        old_version = manager.load_model("m", timestamp=t1)
        new_version = manager.load_model("m", timestamp=t2)
        assert np.allclose(old_version.head1.weight.data, original_head)
        assert np.allclose(new_version.head1.weight.data,
                           original_head + 5.0)
        # frozen prefix shared between versions
        assert np.allclose(old_version.embedding.weight.data,
                           new_version.embedding.weight.data)

    def test_incremental_update_stores_only_tuned_layers(self):
        manager = ModelManager()
        model = self._model()
        manager.register_model("m", model)
        rows_before = manager.layer_rows("m")
        bytes_before = manager.storage_bytes("m")
        manager.incremental_update("m", model, ["head0", "head1"])
        assert manager.layer_rows("m") == rows_before + 2
        added = manager.storage_bytes("m") - bytes_before
        assert added < bytes_before  # far less than a full snapshot

    def test_unknown_layer_rejected(self):
        manager = ModelManager()
        model = self._model()
        manager.register_model("m", model)
        with pytest.raises(KeyError):
            manager.incremental_update("m", model, ["nope"])

    def test_view_materializes(self):
        manager = ModelManager()
        manager.register_model("m", self._model())
        view = manager.view("m")
        assert isinstance(view.materialize(), ARMNet)
        assert len(view.layers()) == 4

    def test_no_complete_version_before_first(self):
        manager = ModelManager()
        manager.register_model("m", self._model())
        with pytest.raises(ModelNotFound):
            manager.resolve_layers("m", timestamp=0)


class TestMonitor:
    def test_detects_loss_increase(self):
        monitor = Monitor()
        monitor.register("loss", threshold=0.3, window=3)
        events = [monitor.observe("loss", 1.0) for _ in range(6)]
        events += [monitor.observe("loss", 2.0) for _ in range(3)]
        assert any(e is not None for e in events)

    def test_no_event_when_stable(self):
        monitor = Monitor()
        monitor.register("loss", threshold=0.3, window=3)
        events = [monitor.observe("loss", 1.0 + 0.01 * i)
                  for i in range(20)]
        assert all(e is None for e in events)

    def test_higher_is_better_direction(self):
        monitor = Monitor()
        monitor.register("tput", higher_is_better=True, threshold=0.3,
                         window=3)
        for _ in range(6):
            monitor.observe("tput", 100.0)
        events = [monitor.observe("tput", 40.0) for _ in range(3)]
        assert any(e is not None for e in events)

    def test_cooldown_suppresses_storm(self):
        monitor = Monitor()
        monitor.register("loss", threshold=0.1, window=3, cooldown=100)
        for _ in range(6):
            monitor.observe("loss", 1.0)
        for _ in range(20):
            monitor.observe("loss", 5.0)
        assert monitor.drift_count("loss") == 1

    def test_trigger_callback(self):
        monitor = Monitor()
        monitor.register("loss", threshold=0.1, window=3)
        fired = []
        monitor.on_drift("loss", fired.append)
        for _ in range(6):
            monitor.observe("loss", 1.0)
        for _ in range(4):
            monitor.observe("loss", 9.0)
        assert fired and fired[0].stream == "loss"

    def test_unknown_stream(self):
        with pytest.raises(KeyError):
            Monitor().observe("nope", 1.0)

    def test_duplicate_stream(self):
        monitor = Monitor()
        monitor.register("x")
        with pytest.raises(ValueError):
            monitor.register("x")

    def test_stream_shorter_than_reference_window_never_fires(self):
        # drift needs a full reference AND a full recent window: the first
        # 2*window-1 observations can never fire, however degraded
        monitor = Monitor()
        monitor.register("loss", threshold=0.1, window=5)
        events = [monitor.observe("loss", 1.0 if i < 5 else 100.0)
                  for i in range(9)]
        assert all(e is None for e in events)
        assert monitor.drift_count("loss") == 0

    def test_higher_is_better_improvement_never_fires(self):
        monitor = Monitor()
        monitor.register("tput", higher_is_better=True, threshold=0.3,
                         window=3)
        for _ in range(6):
            monitor.observe("tput", 100.0)
        events = [monitor.observe("tput", 500.0) for _ in range(10)]
        assert all(e is None for e in events)

    def test_lower_is_better_improvement_never_fires(self):
        monitor = Monitor()
        monitor.register("loss", threshold=0.3, window=3)
        for _ in range(6):
            monitor.observe("loss", 1.0)
        events = [monitor.observe("loss", 0.01) for _ in range(10)]
        assert all(e is None for e in events)

    def test_trigger_callback_error_captured_not_raised(self):
        # an erroring adaptation trigger must not break the metric
        # pipeline, and later triggers for the same event must still run
        monitor = Monitor()
        monitor.register("loss", threshold=0.1, window=3)
        fired = []

        def bad(_event):
            raise RuntimeError("refresh enqueue failed")

        monitor.on_drift("loss", bad)
        monitor.on_drift("loss", fired.append)
        for _ in range(6):
            monitor.observe("loss", 1.0)
        for _ in range(4):
            monitor.observe("loss", 9.0)
        assert fired, "second trigger must still run"
        assert monitor.trigger_errors
        event, error = monitor.trigger_errors[0]
        assert event.stream == "loss"
        assert isinstance(error, RuntimeError)

    def test_drift_count_filters_by_stream(self):
        monitor = Monitor()
        monitor.register("a", threshold=0.1, window=3)
        monitor.register("b", threshold=0.1, window=3)
        for _ in range(6):
            monitor.observe("a", 1.0)
            monitor.observe("b", 1.0)
        for _ in range(4):
            monitor.observe("a", 9.0)  # only stream a drifts
            monitor.observe("b", 1.0)
        assert monitor.drift_count("a") >= 1
        assert monitor.drift_count("b") == 0
        assert monitor.drift_count() == monitor.drift_count("a")
        assert monitor.drift_count("nope") == 0  # unknown name: no events

    def test_has_stream_and_ensure_stream(self):
        monitor = Monitor()
        assert not monitor.has_stream("loss")
        created = monitor.ensure_stream("loss", threshold=0.2, window=4)
        assert monitor.has_stream("loss")
        # idempotent: the existing stream (and its parameters) win
        again = monitor.ensure_stream("loss", threshold=0.9, window=99)
        assert again is created
        assert again.threshold == 0.2


class TestARMNet:
    def test_forward_shape(self):
        model = ARMNet(field_count=4, buckets=64)
        ids = RNG.integers(0, 64, (8, 4))
        assert model.forward(ids).shape == (8,)

    def test_predict_classification_range(self):
        model = ARMNet(field_count=3, task_type="classification",
                       buckets=64)
        probs = model.predict([[1.0, 2.0, 3.0]])
        assert 0.0 <= probs[0] <= 1.0

    def test_predict_regression_unbounded(self):
        model = ARMNet(field_count=3, task_type="regression", buckets=64)
        out = model.predict([[1.0, 2.0, 3.0]])
        assert out.shape == (1,)

    def test_invalid_task_type(self):
        with pytest.raises(ValueError):
            ARMNet(field_count=2, task_type="clustering")

    def test_spec_roundtrip(self):
        model = ARMNet(field_count=5, embed_dim=8, num_cross=3,
                       hidden_dim=16, buckets=128)
        clone = ARMNet.from_spec(model.spec())
        assert clone.field_count == 5
        assert clone.spec() == model.spec()

    def test_freeze_prefix(self):
        model = ARMNet(field_count=3, buckets=64)
        trainable = model.freeze_prefix(tune_last=2)
        head_params = (list(model.head0.parameters())
                       + list(model.head1.parameters()))
        assert len(trainable) == len(head_params)
        assert all(not p.requires_grad
                   for p in model.embedding.parameters())
        model.unfreeze_all()
        assert all(p.requires_grad for p in model.parameters())

    def test_layer_state_roundtrip(self):
        model = ARMNet(field_count=3, buckets=64, seed=1)
        other = ARMNet(field_count=3, buckets=64, seed=2)
        for name in model.layer_names():
            other.load_layer(name, model.layer_state(name))
        ids = RNG.integers(0, 64, (4, 3))
        assert np.allclose(model.forward(ids).data,
                           other.forward(ids).data)


class TestAIEngine:
    def test_train_reduces_loss(self):
        rows, labels = make_dataset(800)
        engine = AIEngine()
        result = engine.train(
            TrainTask(model_name="m", field_count=5, epochs=3,
                      batch_size=128), rows, labels)
        assert np.mean(result.losses[:3]) > np.mean(result.losses[-3:])
        assert result.samples_processed == 800 * 3

    def test_pipelined_beats_serial(self):
        rows, labels = make_dataset(500)
        engine = AIEngine()
        result = engine.train(
            TrainTask(model_name="m", field_count=5, batch_size=64),
            rows, labels)
        assert result.virtual_seconds < result.details["serial_seconds"]

    def test_train_registers_model(self):
        rows, labels = make_dataset(200)
        engine = AIEngine()
        engine.train(TrainTask(model_name="m", field_count=5,
                               batch_size=64), rows, labels)
        assert engine.models.has_model("m")

    def test_infer_after_train(self):
        rows, labels = make_dataset(300)
        engine = AIEngine()
        engine.train(TrainTask(model_name="m", field_count=5,
                               batch_size=64), rows, labels)
        result = engine.infer(InferenceTask(model_name="m"), rows[:10])
        assert result.predictions.shape == (10,)
        assert (0 <= result.predictions).all()
        assert (result.predictions <= 1).all()

    def test_finetune_creates_version_and_is_cheaper(self):
        rows, labels = make_dataset(600)
        engine = AIEngine()
        train = engine.train(TrainTask(model_name="m", field_count=5,
                                       batch_size=128), rows, labels)
        tune = engine.fine_tune(
            FineTuneTask(model_name="m", tune_last_layers=2, epochs=1,
                         batch_size=128), rows[:256], labels[:256])
        assert tune.model_version is not None
        assert engine.models.versions("m") == [1, 2]
        per_sample_train = train.virtual_seconds / train.samples_processed
        per_sample_tune = tune.virtual_seconds / tune.samples_processed
        assert per_sample_tune < per_sample_train

    def test_finetune_leaves_model_unfrozen(self):
        rows, labels = make_dataset(200)
        engine = AIEngine()
        engine.train(TrainTask(model_name="m", field_count=5,
                               batch_size=64), rows, labels)
        engine.fine_tune(FineTuneTask(model_name="m", epochs=1,
                                      batch_size=64),
                         rows[:64], labels[:64])
        model = engine.models.load_model("m")
        assert all(p.requires_grad for p in model.parameters())

    def test_model_selection_picks_a_candidate(self):
        rows, labels = make_dataset(400)
        engine = AIEngine()
        result = engine.select_model(
            ModelSelectionTask(model_name="sel"), rows, labels, steps=5)
        assert result.selected_model in ("armnet", "mlp", "logistic")
        assert set(result.details["scores"]) == {"armnet", "mlp",
                                                 "logistic"}

    def test_train_requires_field_count(self):
        from repro.common.errors import AIEngineError
        with pytest.raises(AIEngineError):
            AIEngine().train(TrainTask(model_name="m"), [], [])

    def test_more_runtimes_faster(self):
        rows, labels = make_dataset(600)
        slow = AIEngine(num_runtimes=1).train(
            TrainTask(model_name="a", field_count=5, batch_size=64),
            rows, labels)
        fast = AIEngine(num_runtimes=4).train(
            TrainTask(model_name="b", field_count=5, batch_size=64),
            rows, labels)
        assert fast.virtual_seconds < slow.virtual_seconds
