"""Tests for the autonomous knob tuner."""

import numpy as np
import pytest

import repro
from repro.learned.tuner import Knob, KnobTuner, buffer_pool_probe


class TestKnob:
    def test_clamp(self):
        knob = Knob("k", 10, 100)
        assert knob.clamp(5) == 10
        assert knob.clamp(500) == 100
        assert knob.clamp(42.4) == 42

    def test_float_knob(self):
        knob = Knob("k", 0.0, 1.0, integer=False)
        assert knob.clamp(0.123) == pytest.approx(0.123)

    def test_invalid_range(self):
        with pytest.raises(ValueError):
            Knob("k", 10, 10)

    def test_neighbors_within_range(self):
        knob = Knob("k", 1, 1000, log_scale=True)
        rng = np.random.default_rng(0)
        for value in knob.neighbors(100, rng, 50):
            assert 1 <= value <= 1000


class TestKnobTuner:
    def test_requires_knobs(self):
        with pytest.raises(ValueError):
            KnobTuner([])

    def test_duplicate_knobs(self):
        with pytest.raises(ValueError):
            KnobTuner([Knob("a", 0, 1), Knob("a", 0, 1)])

    def test_missing_config_key(self):
        tuner = KnobTuner([Knob("a", 0, 10)])
        with pytest.raises(KeyError):
            tuner.tune({}, lambda c: 0.0)

    def test_minimizes_quadratic(self):
        """Cost = (a - 70)^2 + (b - 3)^2: the tuner must move toward the
        optimum from a bad start."""
        tuner = KnobTuner([Knob("a", 0, 100), Knob("b", 0, 10)], seed=0)

        def probe(config):
            return (config["a"] - 70) ** 2 + (config["b"] - 3) ** 2

        report = tuner.tune({"a": 10, "b": 9}, probe, rounds=8,
                            proposals=10, evaluate_top=4)
        assert report.best_cost < report.initial_cost
        assert report.improvement > 0.5
        assert abs(report.best_config["a"] - 70) < 40

    def test_never_regresses(self):
        tuner = KnobTuner([Knob("a", 0, 100)], seed=1)
        report = tuner.tune({"a": 50}, lambda c: abs(c["a"] - 50),
                            rounds=3)
        # the start is already optimal: best must remain the start
        assert report.best_cost == 0.0
        assert report.best_config["a"] == 50

    def test_evaluation_budget(self):
        calls = []
        tuner = KnobTuner([Knob("a", 0, 100)], seed=0)
        tuner.tune({"a": 5}, lambda c: calls.append(1) or 1.0,
                   rounds=2, proposals=6, evaluate_top=2)
        assert len(calls) == 1 + 2 * 2

    def test_history_accumulates(self):
        tuner = KnobTuner([Knob("a", 0, 100)], seed=0)
        tuner.tune({"a": 5}, lambda c: 1.0, rounds=1, evaluate_top=2)
        assert len(tuner.history) == 3


class TestBufferPoolTuning:
    def test_tuner_grows_undersized_buffer(self):
        """An undersized buffer pool thrashes on repeated scans; the tuner
        should discover that more pages reduce virtual latency."""
        def make_db(buffer_pages: int):
            db = repro.connect(buffer_pages=buffer_pages)
            db.execute("CREATE TABLE big (a INT, payload TEXT)")
            heap = db.catalog.table("big")
            for i in range(4000):
                heap.insert((i, "x" * 100))
            db.execute("ANALYZE")
            return db

        workload = ["SELECT count(*) FROM big WHERE a > 100"] * 3
        probe = buffer_pool_probe(make_db, workload)
        tuner = KnobTuner([Knob("buffer_pages", 2, 512, log_scale=True)],
                          seed=0)
        report = tuner.tune({"buffer_pages": 4}, probe, rounds=6,
                            proposals=8, evaluate_top=3)
        assert report.best_config["buffer_pages"] > 4
        assert report.improvement > 0.1
