"""Tests for the catalog and the statistics module."""

import numpy as np
import pytest

from repro.common.errors import CatalogError
from repro.storage import (
    Catalog,
    Column,
    DataType,
    TableSchema,
    compute_column_stats,
    compute_table_stats,
)


def _schema(name="t"):
    return TableSchema(name, [Column("id", DataType.INT, unique=True),
                              Column("v", DataType.FLOAT)])


class TestCatalog:
    def test_create_get_table(self, catalog):
        catalog.create_table(_schema())
        assert catalog.has_table("t")
        assert catalog.table("T").name == "t"

    def test_duplicate_table(self, catalog):
        catalog.create_table(_schema())
        with pytest.raises(CatalogError):
            catalog.create_table(_schema())

    def test_missing_table(self, catalog):
        with pytest.raises(CatalogError):
            catalog.table("ghost")

    def test_drop_table_removes_everything(self, catalog):
        catalog.create_table(_schema())
        catalog.create_index("i", "t", "v")
        catalog.analyze("t")
        catalog.drop_table("t")
        assert not catalog.has_table("t")
        assert catalog.stats("t") is None
        assert catalog.indexes_on("t") == []

    def test_drop_if_exists(self, catalog):
        catalog.drop_table("ghost", if_exists=True)
        with pytest.raises(CatalogError):
            catalog.drop_table("ghost")

    def test_table_names_sorted(self, catalog):
        catalog.create_table(_schema("zz"))
        catalog.create_table(_schema("aa"))
        assert catalog.table_names() == ["aa", "zz"]

    def test_create_index_backfills_existing_rows(self, catalog):
        catalog.create_table(_schema())
        table = catalog.table("t")
        for i in range(20):
            table.insert((i, float(i)))
        entry = catalog.create_index("i", "t", "id")
        assert len(entry.index.search(7)) == 1

    def test_hash_index_kind(self, catalog):
        catalog.create_table(_schema())
        entry = catalog.create_index("h", "t", "v", kind="hash")
        assert entry.kind == "hash"

    def test_unknown_index_kind(self, catalog):
        catalog.create_table(_schema())
        with pytest.raises(CatalogError):
            catalog.create_index("x", "t", "v", kind="rtree")

    def test_duplicate_index_name(self, catalog):
        catalog.create_table(_schema())
        catalog.create_index("i", "t", "v")
        with pytest.raises(CatalogError):
            catalog.create_index("i", "t", "id")

    def test_indexes_on_filters_by_column(self, catalog):
        catalog.create_table(_schema())
        catalog.create_index("i1", "t", "id")
        catalog.create_index("i2", "t", "v")
        assert len(catalog.indexes_on("t")) == 2
        assert len(catalog.indexes_on("t", "id")) == 1

    def test_analyze_versions_increase(self, catalog):
        catalog.create_table(_schema())
        catalog.analyze()
        v1 = catalog.stats_version()
        catalog.analyze("t")
        assert catalog.stats_version() == v1 + 1

    def test_analyze_captures_row_count(self, catalog):
        catalog.create_table(_schema())
        table = catalog.table("t")
        for i in range(42):
            table.insert((i, float(i)))
        catalog.analyze("t")
        assert catalog.stats("t").row_count == 42

    def test_model_bindings(self, catalog):
        catalog.create_table(_schema())
        catalog.bind_model("t", "v", "model_x")
        assert catalog.bound_model("T", "V") == "model_x"
        assert catalog.bound_model("t", "id") is None


class TestColumnStats:
    def test_basic_counts(self):
        stats = compute_column_stats("c", DataType.INT,
                                     [1, 2, 2, None, 3])
        assert stats.row_count == 5
        assert stats.null_count == 1
        assert stats.distinct_count == 3
        assert stats.null_fraction() == pytest.approx(0.2)

    def test_min_max_histogram(self):
        values = list(range(100))
        stats = compute_column_stats("c", DataType.INT, values)
        assert stats.min_value == 0
        assert stats.max_value == 99
        assert stats.histogram.sum() == 100

    def test_selectivity_eq_most_common(self):
        values = [7] * 50 + list(range(50))
        stats = compute_column_stats("c", DataType.INT, values)
        assert stats.selectivity_eq(7) == pytest.approx(0.51, abs=0.02)

    def test_selectivity_eq_uniform_fallback(self):
        values = list(range(1000))
        stats = compute_column_stats("c", DataType.INT, values)
        assert stats.selectivity_eq(123456) == pytest.approx(1 / 1000)

    def test_selectivity_range_half(self):
        values = list(range(100))
        stats = compute_column_stats("c", DataType.INT, values)
        assert stats.selectivity_range(0, 49) == pytest.approx(0.5,
                                                               abs=0.08)

    def test_selectivity_range_outside(self):
        values = list(range(100))
        stats = compute_column_stats("c", DataType.INT, values)
        assert stats.selectivity_range(200, 300) == pytest.approx(0.0)

    def test_selectivity_range_open_ends(self):
        values = list(range(100))
        stats = compute_column_stats("c", DataType.INT, values)
        assert stats.selectivity_range(None, None) == pytest.approx(1.0)

    def test_empty_column(self):
        stats = compute_column_stats("c", DataType.INT, [])
        assert stats.selectivity_eq(5) == 0.0
        assert stats.feature_vector().shape == (21,)

    def test_text_column_sketch(self):
        stats = compute_column_stats("c", DataType.TEXT,
                                     ["a", "b", "a", "c"])
        assert stats.distinct_count == 3
        assert stats.histogram.sum() == 4

    def test_feature_vector_shape_and_bounds(self):
        values = list(np.random.default_rng(0).normal(50, 10, 500))
        stats = compute_column_stats("c", DataType.FLOAT, values)
        vec = stats.feature_vector()
        assert vec.shape == (21,)
        assert np.isfinite(vec).all()
        assert vec[:16].sum() == pytest.approx(1.0)  # normalized histogram

    def test_table_stats_covers_all_columns(self, simple_schema):
        rows = [(i, f"n{i}", float(i), True) for i in range(10)]
        table_stats = compute_table_stats(simple_schema, rows,
                                          page_count=2)
        assert set(table_stats.columns) == {"id", "name", "score",
                                            "active"}
        assert table_stats.page_count == 2
