"""Deterministic fault injection + recovery across every layer.

The headline invariant (``docs/faults.md``): under **any** seeded fault
plan, recovered results are bit-identical — rows *and* final answers — to
the fault-free run.  The fault-sweep parity suite asserts it at workers
1/2/4 for the seed in ``FAULT_SEED`` (CI runs a 3-seed matrix).

Beyond the sweep: FaultPlan determinism and validation, scheduler crash
recovery and retry-budget exhaustion, replicated-table failover /
logical-clock resync, serving deadlines / batch retries / refresh
re-arming, the Db-level retry policy, and the no-silent-failures
counters (``PredictServer.stats()``, ``NeurDB.warnings()``).
"""

from __future__ import annotations

import os

import numpy as np
import pytest

import repro
from repro.common.errors import (
    DeadlineExceeded,
    ExecutionError,
    ReplicaUnavailable,
    TransientError,
    WorkerCrash,
    is_retryable,
)
from repro.common.faults import KINDS, NO_FAULTS, FaultPlan, FaultSpec
from repro.common.simtime import BudgetExceeded, SimClock
from repro.exec.executor import Executor
from repro.exec.parallel import MorselScheduler
from repro.serve import PredictServer
from repro.sql import parse
from repro.storage import (
    BACKUP,
    PRIMARY,
    Column,
    DataType,
    ReplicatedTable,
    TableSchema,
)

FAULT_SEED = int(os.environ.get("FAULT_SEED", "0"))


def _typed(rows):
    return [tuple((type(v), v) for v in row) for row in rows]


# -- FaultPlan: the deterministic substrate ----------------------------------


class TestFaultPlan:
    def test_rolls_are_pure_functions_of_seed_kind_site(self):
        a, b = FaultPlan(seed=7), FaultPlan(seed=7)
        sites = [f"sched#1:0:{i}:0" for i in range(50)]
        assert ([a.roll("task_error", s) for s in sites]
                == [b.roll("task_error", s) for s in sites])
        # different seed or kind => different roll sequence
        c = FaultPlan(seed=8)
        assert ([a.roll("task_error", s) for s in sites]
                != [c.roll("task_error", s) for s in sites])
        assert ([a.roll("task_error", s) for s in sites]
                != [a.roll("worker_crash", s) for s in sites])

    def test_decide_rate_is_deterministic_and_logged(self):
        plan = FaultPlan(seed=3).arm("task_error", rate=0.5)
        fired = [bool(plan.decide("task_error", f"s:{i}", index=i))
                 for i in range(100)]
        again = FaultPlan(seed=3).arm("task_error", rate=0.5)
        assert fired == [bool(again.decide("task_error", f"s:{i}", index=i))
                         for i in range(100)]
        assert 10 < sum(fired) < 90  # a rate, not a constant
        assert plan.count("task_error") == sum(fired)
        assert plan.counts() == {"task_error": sum(fired)}

    def test_scheduled_times_fire_on_first_attempt_only(self):
        plan = FaultPlan(seed=0).arm("worker_crash", times=(3,))
        assert plan.decide("worker_crash", "x:3:0", index=3) is not None
        # retried unit of work: the scheduled fault must not re-fire
        assert plan.decide("worker_crash", "x:3:1", index=3,
                           attempt=1) is None
        assert plan.decide("worker_crash", "x:2:0", index=2) is None

    def test_target_filter(self):
        plan = FaultPlan(seed=0).arm("replica_down", times=(1,),
                                     target="orders")
        assert plan.decide("replica_down", "s", index=1,
                           target="orders") is not None
        assert plan.decide("replica_down", "s", index=1,
                           target="users") is None
        assert plan.decide("replica_down", "s", index=1) is None

    def test_maybe_raise_maps_kinds_to_exceptions(self):
        plan = FaultPlan(seed=0)
        for kind in KINDS:
            plan.arm(kind, rate=1.0)
        with pytest.raises(TransientError):
            plan.maybe_raise("task_error", "s")
        with pytest.raises(WorkerCrash):
            plan.maybe_raise("worker_crash", "s")
        with pytest.raises(ReplicaUnavailable):
            plan.maybe_raise("replica_down", "s")
        with pytest.raises(TransientError):
            plan.maybe_raise("serve_error", "s")
        with pytest.raises(TransientError):
            plan.maybe_raise("refresh_fail", "s")

    def test_scope_tokens_are_monotone_and_fresh(self):
        plan = FaultPlan(seed=0)
        assert plan.scope("sched") == "sched#1"
        assert plan.scope("sched") == "sched#2"
        assert plan.scope("serve") == "serve#3"

    def test_validation(self):
        with pytest.raises(ValueError):
            FaultSpec(kind="meteor_strike")
        with pytest.raises(ValueError):
            FaultPlan(0).arm("task_error", rate=1.5)
        with pytest.raises(ValueError):
            FaultPlan(0).arm("slow_worker", latency=-1.0)
        with pytest.raises(ValueError):
            FaultPlan(0).arm("replica_down", duration=-1)

    def test_chaos_and_no_faults(self):
        plan = FaultPlan.chaos(seed=1, rate=0.2)
        assert plan.arms("task_error") and plan.arms("worker_crash")
        assert plan.arms("slow_worker")
        assert not plan.arms("replica_down")
        assert NO_FAULTS.decide("task_error", "anything", index=0) is None
        NO_FAULTS.maybe_raise("worker_crash", "anything")  # no-op

    def test_retryable_classifier(self):
        assert is_retryable(TransientError("x"))
        assert is_retryable(WorkerCrash("x"))
        assert is_retryable(ReplicaUnavailable("x"))  # a TransientError
        assert not is_retryable(DeadlineExceeded("x"))
        assert not is_retryable(ExecutionError("x"))
        assert not is_retryable(KeyboardInterrupt())


# -- fault-sweep parity: the headline invariant ------------------------------


def _chaos_db(rows: int = 300):
    db = repro.connect()
    db.execute("CREATE TABLE t (id INT UNIQUE, grp TEXT, v FLOAT)")
    heap = db.catalog.table("t")
    for i in range(rows):
        heap.insert((i, f"g{i % 9}", float(i) * 0.25))
    db.execute("ANALYZE")
    return db


SWEEP_QUERIES = [
    "SELECT * FROM t",
    "SELECT grp, count(*), sum(v), avg(v) FROM t GROUP BY grp",
    "SELECT id, v FROM t WHERE v > 20.0 ORDER BY v DESC",
]


class TestFaultSweepParity:
    """Chaos at workers 1/2/4 never changes a single bit of the answer."""

    @pytest.mark.parametrize("workers", [1, 2, 4])
    @pytest.mark.parametrize("sql", SWEEP_QUERIES)
    def test_recovered_results_bit_identical(self, sql, workers):
        db = _chaos_db()
        plan_node = db.planner.plan_select(parse(sql))
        expected = Executor(db.catalog, db.clock, engine="parallel",
                            workers=workers).run(plan_node)
        chaos = FaultPlan.chaos(FAULT_SEED, rate=0.08, latency=1e-4)
        result = Executor(db.catalog, db.clock, engine="parallel",
                          workers=workers, faults=chaos,
                          retry_limit=6).run(plan_node)
        assert _typed(result.rows) == _typed(expected.rows)
        stats = result.extra["parallel"]
        injected = chaos.counts()
        recovered = (stats["task_retries"] + stats["crashes_recovered"])
        assert recovered == (injected.get("task_error", 0)
                             + injected.get("worker_crash", 0))

    def test_injected_multiset_independent_of_worker_count(self):
        """The same seed injects the same faults at workers 1, 2, and 4 —
        thread interleaving cannot perturb the chaos."""
        counts = []
        for workers in (1, 2, 4):
            db = _chaos_db()
            plan_node = db.planner.plan_select(parse(SWEEP_QUERIES[1]))
            chaos = FaultPlan.chaos(FAULT_SEED, rate=0.15, latency=1e-4)
            Executor(db.catalog, db.clock, engine="parallel",
                     workers=workers, faults=chaos,
                     retry_limit=8).run(plan_node)
            counts.append(chaos.counts())
        assert counts[0] == counts[1] == counts[2]

    def test_recovery_cost_is_charged(self):
        """Crashed attempts keep their charges: a chaotic run charges
        strictly more virtual time than the fault-free run, and the
        makespan models the shrunken worker pool."""
        db = _chaos_db()
        plan_node = db.planner.plan_select(parse(SWEEP_QUERIES[0]))
        clean = Executor(db.catalog, db.clock, engine="parallel",
                         workers=4).run(plan_node)
        chaos = FaultPlan(seed=FAULT_SEED).arm("worker_crash", times=(0,))
        faulty = Executor(db.catalog, db.clock, engine="parallel",
                          workers=4, faults=chaos,
                          retry_limit=4).run(plan_node)
        assert chaos.count("worker_crash") >= 1
        assert faulty.virtual_seconds > clean.virtual_seconds
        assert (faulty.extra["parallel"]["virtual_makespan"]
                >= clean.extra["parallel"]["virtual_makespan"])


# -- scheduler recovery mechanics --------------------------------------------


class TestSchedulerRecovery:
    def test_scheduled_crash_is_recovered(self):
        plan = FaultPlan(seed=0).arm("worker_crash", times=(2,))
        sched = MorselScheduler(SimClock(), workers=3, faults=plan)
        out = sched.map(list(range(8)), lambda item, shard: item * 10)
        assert out == [i * 10 for i in range(8)]
        assert sched.crashes_recovered == 1
        assert sched.finish()["crashes_recovered"] == 1

    def test_slow_worker_charges_latency(self):
        plan = FaultPlan(seed=0).arm("slow_worker", times=(1,),
                                     latency=0.5)
        clock = SimClock()
        sched = MorselScheduler(clock, workers=2, faults=plan)
        sched.map([0, 1, 2], lambda item, shard: item)
        sched.finish()
        assert clock.breakdown().get("fault-slow") == pytest.approx(0.5)

    def test_retry_budget_exhaustion_raises_transient(self):
        plan = FaultPlan(seed=0).arm("task_error", rate=1.0)
        sched = MorselScheduler(SimClock(), workers=2, faults=plan,
                                retry_limit=3)
        with pytest.raises(TransientError):
            sched.map([0, 1], lambda item, shard: item)
        # the budget was spent before giving up
        assert sched.task_retries == 3

    def test_zero_retry_limit_escalates_immediately(self):
        plan = FaultPlan(seed=0).arm("task_error", times=(0,))
        sched = MorselScheduler(SimClock(), workers=2, faults=plan,
                                retry_limit=0)
        with pytest.raises(TransientError):
            sched.map([0, 1], lambda item, shard: item)
        assert sched.task_retries == 0

    def test_non_retryable_errors_are_not_retried(self):
        sched = MorselScheduler(SimClock(), workers=2, retry_limit=5)

        def boom(item, shard):
            raise ExecutionError("real bug, not chaos")

        with pytest.raises(ExecutionError):
            sched.map([0, 1, 2], boom)
        assert sched.task_retries == 0

    def test_keyboard_interrupt_propagates_immediately(self):
        """The worker loop must re-raise KeyboardInterrupt/SystemExit as
        themselves — never swallowed into task-failure handling, never
        retried."""
        sched = MorselScheduler(SimClock(), workers=2, retry_limit=5)

        def interrupted(item, shard):
            raise KeyboardInterrupt()

        with pytest.raises(KeyboardInterrupt):
            sched.map(list(range(4)), interrupted)
        assert sched.task_retries == 0

    def test_budget_exhaustion_not_swallowed_by_fault_retries(self):
        """BudgetExceeded is not retryable: a fault-armed run under a
        too-small budget must still stop at the phase boundary."""
        db = _chaos_db(rows=2000)
        sql = "SELECT id, v FROM t ORDER BY v DESC"
        plan_node = db.planner.plan_select(parse(sql))
        full = Executor(db.catalog, db.clock, engine="parallel",
                        workers=4).run(plan_node)
        start = db.clock.now
        db.clock.set_limit(start + full.virtual_seconds * 0.3)
        try:
            with pytest.raises(BudgetExceeded):
                Executor(db.catalog, db.clock, engine="parallel",
                         workers=4,
                         faults=FaultPlan.chaos(FAULT_SEED, rate=0.1),
                         retry_limit=4).run(plan_node)
        finally:
            db.clock.set_limit(None)

    def test_retry_limit_validation(self):
        with pytest.raises(ValueError):
            MorselScheduler(SimClock(), workers=2, retry_limit=-1)


# -- replicated storage -------------------------------------------------------


def _replicated(clock=None, faults=None):
    schema = TableSchema("orders", [Column("id", DataType.INT),
                                    Column("qty", DataType.INT)])
    return ReplicatedTable(schema, clock=clock, faults=faults)


class TestReplicatedTable:
    def test_copies_stay_bit_identical(self):
        table = _replicated()
        rids = [table.insert((i, i * 2)) for i in range(50)]
        table.update(rids[3], (3, 99))
        table.delete(rids[7])
        assert (_typed([r for _, r in table.primary.scan()])
                == _typed([r for _, r in table.backup.scan()]))
        # RecordIds are identical across copies by construction
        assert ([rid for rid, _ in table.primary.scan()]
                == [rid for rid, _ in table.backup.scan()])
        assert table.lsn == 52  # 50 inserts + update + delete

    def test_failover_scan_is_bit_identical(self):
        table = _replicated()
        rids = [table.insert((i, i)) for i in range(20)]
        before = _typed([r for _, r in table.scan()])
        table.mark_down(PRIMARY, ops=1000)
        assert table.active_node() == BACKUP
        assert _typed([r for _, r in table.scan()]) == before
        # rids stay valid across the failover
        assert table.read(rids[5]) == (5, 5)

    def test_missed_writes_resync_in_lsn_order(self):
        table = _replicated()
        for i in range(5):
            table.insert((i, i))
        table.mark_down(PRIMARY, ops=1000)
        for i in range(5, 10):
            table.insert((i, i))           # applied to backup only
        assert table.status()["missed"][PRIMARY] == 5
        table.recover(PRIMARY)
        assert table.status()["missed"][PRIMARY] == 0
        assert table.resynced_writes == 5
        assert (_typed([r for _, r in table.primary.scan()])
                == _typed([r for _, r in table.backup.scan()]))

    def test_outage_elapses_then_resyncs(self):
        table = _replicated()
        table.insert((0, 0))
        table.mark_down(PRIMARY, ops=2)
        table.insert((1, 1))
        table.insert((2, 2))
        assert table.is_down(PRIMARY)
        table.insert((3, 3))   # outage elapsed: resync happened first
        assert not table.is_down(PRIMARY)
        assert table.resyncs == 1
        assert (_typed([r for _, r in table.primary.scan()])
                == _typed([r for _, r in table.backup.scan()]))

    def test_both_down_raises_retryable(self):
        table = _replicated()
        table.insert((0, 0))
        table.mark_down(PRIMARY, ops=1000)
        table.mark_down(BACKUP, ops=1000)
        with pytest.raises(ReplicaUnavailable) as exc_info:
            table.read(None)
        assert is_retryable(exc_info.value)
        assert table.status()["active"] == "none"

    def test_failover_and_resync_charge_the_clock(self):
        clock = SimClock()
        table = _replicated(clock=clock)
        table.insert((0, 0))
        table.mark_down(PRIMARY, ops=1)
        table.insert((1, 1))
        table.insert((2, 2))   # outage elapsed -> resync
        breakdown = clock.breakdown()
        assert breakdown.get("replicate", 0) > 0
        assert breakdown.get("failover", 0) > 0
        assert breakdown.get("resync", 0) > 0

    def test_fault_driven_outages_are_deterministic(self):
        def run(seed):
            plan = FaultPlan(seed).arm("replica_down", rate=0.05,
                                       duration=2)
            table = _replicated(faults=plan)
            for i in range(100):
                table.insert((i, i))
            rows = _typed([r for _, r in table.scan()])
            return rows, table.status()["failovers"], plan.counts()

        rows_a, fails_a, counts_a = run(11)
        rows_b, fails_b, counts_b = run(11)
        assert (rows_a, fails_a, counts_a) == (rows_b, fails_b, counts_b)
        # and the rows equal a fault-free table's rows
        clean = _replicated()
        for i in range(100):
            clean.insert((i, i))
        assert rows_a == _typed([r for _, r in clean.scan()])

    def test_mark_down_validation(self):
        table = _replicated()
        with pytest.raises(ValueError):
            table.mark_down(PRIMARY, ops=0)
        with pytest.raises(ValueError):
            table.mark_down("coordinator")
        with pytest.raises(ValueError):
            table.is_down("quorum")

    @staticmethod
    def _typed_replicated(faults=None):
        schema = TableSchema("events", [
            Column("id", DataType.INT),
            Column("tag", DataType.TEXT),      # dictionary-coded at rest
            Column("flag", DataType.BOOL),
            Column("v", DataType.FLOAT),       # NULLs + NaN payloads
        ])
        return ReplicatedTable(schema, faults=faults)

    @classmethod
    def _typed_churn(cls, table, seed):
        """A deterministic insert/update/delete stream over every typed
        column kind: int64, dictionary strings, bools, floats with NULL
        and NaN holes."""
        rng = np.random.default_rng(seed)
        rids = []
        for i in range(160):
            v = [1.5, float("nan"), None, float(i)][i % 4]
            rids.append(table.insert(
                (i, f"tag-{i % 6}", bool(i % 3 == 0), v)))
            roll = rng.random()
            if roll < 0.12 and rids:
                table.delete(rids.pop(int(rng.integers(len(rids)))))
            elif roll < 0.24 and rids:
                rid = rids[int(rng.integers(len(rids)))]
                table.update(rid, (i + 1000, None, False, -v if v else v))

    def test_typed_chaos_resyncs_bit_identical(self):
        """Seeded replica_down chaos over a table exercising every typed
        column layout: after recovery, the typed page state — data
        arrays, validity bitmaps, dictionaries, RecordIds — is
        bit-identical across copies (``copies_identical``), and the
        surviving rows equal a fault-free twin's."""
        plan = FaultPlan(FAULT_SEED).arm("replica_down", rate=0.06,
                                         duration=3)
        table = self._typed_replicated(faults=plan)
        self._typed_churn(table, seed=FAULT_SEED + 17)
        assert plan.counts().get("replica_down", 0) > 0, \
            "chaos plan never fired; raise the rate"
        table.recover(PRIMARY)
        table.recover(BACKUP)
        assert table.status()["missed"] == {PRIMARY: 0, BACKUP: 0}
        assert table.copies_identical()

        clean = self._typed_replicated()
        self._typed_churn(clean, seed=FAULT_SEED + 17)
        assert clean.copies_identical()
        want = [tuple(repr(v) for v in r) for _, r in clean.scan()]
        assert [tuple(repr(v) for v in r)
                for _, r in table.scan()] == want

    def test_copies_identical_detects_divergence(self):
        table = self._typed_replicated()
        for i in range(30):
            table.insert((i, f"t{i % 4}", bool(i % 2), i / 3.0))
        assert table.copies_identical()
        # write past replication (simulated divergence): detected
        table.backup.insert((999, "rogue", True, 0.0))
        assert not table.copies_identical()

    def test_typed_scan_identical_through_worker_crash_chaos(self):
        """worker_crash chaos over a replicated typed table: the morsel
        scheduler's retries return rows bit-identical to a fault-free
        run, and the table's copies stay bit-identical underneath."""
        db = repro.connect(replication=True)
        db.execute("CREATE TABLE events (id INT, tag TEXT, flag BOOL, "
                   "v FLOAT)")
        heap = db.catalog.table("events")
        for i in range(120):
            heap.insert((i, f"tag-{i % 6}", bool(i % 3 == 0),
                         None if i % 7 == 0 else i / 11.0))
        db.execute("ANALYZE")
        sql = ("SELECT tag, count(*), sum(v) FROM events "
               "WHERE flag = TRUE OR v > 2 GROUP BY tag")
        plan_free = db.planner.plan_select(parse(sql))
        expected = Executor(db.catalog, db.clock, engine="parallel",
                            workers=4, morsel_rows=16).run(plan_free)
        chaos = FaultPlan(FAULT_SEED).arm("worker_crash", rate=0.1)
        for workers in (1, 2, 4):
            got = Executor(db.catalog, db.clock, engine="parallel",
                           workers=workers, morsel_rows=16,
                           faults=chaos, retry_limit=50).run(plan_free)
            assert _typed(got.rows) == _typed(expected.rows)
        assert heap.copies_identical()


class TestReplicatedDb:
    def test_query_parity_under_replication_and_outages(self):
        def fill(db):
            db.execute("CREATE TABLE t (id INT UNIQUE, grp TEXT, v FLOAT)")
            heap = db.catalog.table("t")
            for i in range(200):
                heap.insert((i, f"g{i % 5}", float(i)))
            db.execute("ANALYZE")

        sql = "SELECT grp, count(*), sum(v) FROM t GROUP BY grp ORDER BY grp"
        plain = repro.connect()
        fill(plain)
        expected = _typed(plain.execute(sql).rows)

        replicated = repro.connect(replication=True)
        fill(replicated)
        assert replicated.catalog.table("t").replicated
        assert _typed(replicated.execute(sql).rows) == expected

        plan = FaultPlan(FAULT_SEED).arm("replica_down", rate=0.02,
                                         duration=3)
        chaotic = repro.connect(replication=True, faults=plan,
                                retry_policy=2)
        fill(chaotic)
        assert _typed(chaotic.execute(sql).rows) == expected

    def test_drop_table_evicts_backup_pages(self):
        db = repro.connect(replication=True)
        db.execute("CREATE TABLE t (id INT)")
        db.execute("INSERT INTO t VALUES (1)")
        table = db.catalog.table("t")
        backup = table.backup.name
        list(table.backup.scan())   # make the backup's page resident
        assert db.buffer_pool.table_residency(backup, 1) > 0
        db.execute("DROP TABLE t")
        assert not db.catalog.has_table("t")
        assert db.buffer_pool.table_residency(backup, 1) == 0


# -- serving robustness -------------------------------------------------------


REVIEW_SQL = ("PREDICT VALUE OF score FROM review "
              "WHERE brand_name = 'special goods' "
              "TRAIN ON f1, f2 WITH brand_name <> 'special goods'")


def _review_db(**connect_kwargs):
    db = repro.connect(**connect_kwargs)
    db.execute("CREATE TABLE review (rid INT UNIQUE, brand_name TEXT, "
               "f1 FLOAT, f2 FLOAT, score FLOAT)")
    rng = np.random.default_rng(0)
    for i in range(120):
        brand = "special goods" if i % 5 == 0 else "acme"
        f1, f2 = float(rng.random()), float(rng.random())
        score = "NULL" if i % 5 == 0 else f"{3 * f1 - 2 * f2 + 1:.4f}"
        db.execute(f"INSERT INTO review VALUES ({i}, '{brand}', "
                   f"{f1:.4f}, {f2:.4f}, {score})")
    db.execute("ANALYZE")
    return db


class TestServingRobustness:
    def test_serve_error_retried_bit_identical(self):
        baseline = _review_db()
        server0 = PredictServer(baseline)
        clean = server0.submit(REVIEW_SQL)
        server0.drain()

        plan = FaultPlan(seed=3).arm("serve_error", times=(0,))
        db = _review_db()
        server = PredictServer(db, faults=plan)
        request = server.submit(REVIEW_SQL)
        server.drain()
        assert request.error is None
        assert request.retries == 1
        assert _typed(request.result.rows) == _typed(clean.result.rows)
        # the retry cost shows up in modeled latency (backoff + re-run)
        assert request.latency > clean.latency
        stats = server.stats()
        assert stats["batch_retries"] == 1
        assert stats["faults_injected"] == {"serve_error": 1}

    def test_batch_retry_budget_exhaustion(self):
        plan = FaultPlan(seed=3).arm("serve_error", rate=1.0)
        db = _review_db()
        server = PredictServer(db, faults=plan, max_batch_retries=2)
        request = server.submit(REVIEW_SQL)
        server.drain()
        assert request.error is not None
        assert "serve_error" in request.error
        assert request.retries == 2
        assert server.stats()["batch_retries"] == 2
        assert server.stats()["failed"] == 1

    def test_deadline_missed_mid_batch(self):
        db = _review_db()
        server = PredictServer(db)
        ok = server.submit(REVIEW_SQL, at=0.0)
        doomed = server.submit(REVIEW_SQL, at=0.0, deadline=1e-9)
        server.drain()
        assert ok.error is None
        assert doomed.error is not None
        assert "DeadlineExceeded" in doomed.error
        assert doomed.result is None
        assert server.stats()["deadline_misses"] == 1

    def test_deadline_expired_before_service(self):
        db = _review_db()
        server = PredictServer(db)
        first = server.submit(REVIEW_SQL, at=0.0)
        # arrives during the first batch's service, expires before the
        # lane frees: failed at zero cost, never executed
        late = server.submit(REVIEW_SQL, at=1e-6, deadline=1e-6)
        server.drain()
        assert first.error is None
        assert late.error is not None and "before service" in late.error
        assert server.stats()["deadline_misses"] == 1
        # zero-cost completion: no charges for the expired request
        assert late.started_at == late.completed_at

    def test_no_deadline_means_no_misses(self):
        db = _review_db()
        server = PredictServer(db)
        for _ in range(3):
            server.submit(REVIEW_SQL)
        served = server.drain()
        assert all(r.error is None for r in served)
        assert server.stats()["deadline_misses"] == 0

    def test_refresh_failure_rearms_with_backoff(self):
        plan = FaultPlan(seed=1).arm("refresh_fail", times=(1,))
        db = _review_db()
        server = PredictServer(db, faults=plan)
        request = server.submit(REVIEW_SQL)
        server.drain()
        assert request.error is None
        server.refresh_now("review", "score")
        server.drain()
        statuses = [(t.attempt, t.status) for t in server.refreshes]
        assert statuses == [(0, "failed"), (1, "done")]
        failed, retried = server.refreshes
        # the retry waits out the backoff on the refresh lane
        assert retried.enqueued_at > failed.completed_at
        assert retried.started_at >= retried.enqueued_at
        stats = server.stats()
        assert stats["refresh_failed"] == 1
        assert stats["refresh_retries"] == 1

    def test_refresh_retry_budget_exhaustion_keeps_serving(self):
        plan = FaultPlan(seed=1).arm("refresh_fail", rate=1.0)
        db = _review_db()
        server = PredictServer(db, faults=plan, refresh_max_retries=2)
        request = server.submit(REVIEW_SQL)
        server.drain()
        pinned = server.serving_version(request.model_name)
        server.refresh_now("review", "score")
        server.drain()
        # original + 2 retries, all failed; no infinite loop
        assert [t.status for t in server.refreshes] == ["failed"] * 3
        assert server.stats()["refresh_retries"] == 2
        # serving is still alive on the pinned version
        again = server.submit(REVIEW_SQL)
        server.drain()
        assert again.error is None
        assert server.serving_version(request.model_name) == pinned

    def test_failed_refresh_then_recovery_swaps_eventually(self):
        """Mid-refresh fault: the retry succeeds, and the swap still
        happens at a later batch boundary — the drift loop stays alive."""
        plan = FaultPlan(seed=1).arm("refresh_fail", times=(1,))
        db = _review_db()
        server = PredictServer(db, faults=plan)
        first = server.submit(REVIEW_SQL)
        server.drain()
        v0 = server.serving_version(first.model_name)
        server.refresh_now("review", "score")
        server.drain()
        done = [t for t in server.refreshes if t.status == "done"]
        assert len(done) == 1 and done[0].attempt == 1
        # push the serving timeline past the refresh completion
        last = None
        for at in range(1, 60):
            last = server.submit(REVIEW_SQL,
                                 at=float(at) * max(first.latency, 1e-3))
            server.drain()
            if last.model_version != v0:
                break
        assert last.model_version == done[0].version_after
        assert server.stats()["refreshes_swapped"] == 1

    def test_stats_surface_trigger_errors(self):
        """A drift trigger that raises must not take the metric pipeline
        down — but it must not vanish either: it lands in
        ``Monitor.trigger_errors``, ``PredictServer.stats()``, and
        ``NeurDB.warnings()``."""
        db = _review_db()
        server = PredictServer(db)
        server.submit(REVIEW_SQL)
        server.drain()

        def bad_trigger(event):
            raise RuntimeError("observer bug")

        db.monitor.register("test:metric", window=2)
        db.monitor.on_drift("test:metric", bad_trigger)
        for value in (1.0, 1.0, 1.0, 1.0, 100.0):
            db.monitor.observe("test:metric", value)
        assert db.monitor.trigger_errors
        assert server.stats()["trigger_errors"] == \
            len(db.monitor.trigger_errors)
        assert any("observer bug" in w for w in db.warnings())

    def test_constructor_validation(self):
        db = repro.connect()
        with pytest.raises(ValueError):
            PredictServer(db, max_batch_retries=-1)
        with pytest.raises(ValueError):
            PredictServer(db, refresh_max_retries=-1)
        with pytest.raises(ValueError):
            PredictServer(db, retry_backoff=-0.1)
        with pytest.raises(ValueError):
            PredictServer(db, default_deadline=0.0)


# -- Db-level retry policy ----------------------------------------------------


class TestDbRetryPolicy:
    def test_policy_validation_and_shorthand(self):
        assert repro.RetryPolicy(max_retries=3).max_retries == 3
        with pytest.raises(ValueError):
            repro.RetryPolicy(max_retries=-1)
        with pytest.raises(ValueError):
            repro.RetryPolicy(backoff=-1.0)
        db = repro.connect(retry_policy=4)
        assert db.retry_policy.max_retries == 4

    def test_transient_query_failures_are_retried(self):
        """Seed 12 makes the first materialization scope fail under a 0.5
        task_error rate with no scheduler-level retries, so the failure
        escalates to the Db retry loop — which re-runs the statement
        (fresh fault scope) until it succeeds, bit-identical to the
        fault-free answer."""
        plan = FaultPlan(seed=12).arm("task_error", rate=0.5)
        db = _review_db(faults=plan, predict_workers=4,
                        retry_policy=repro.RetryPolicy(max_retries=20,
                                                       backoff=1e-4))
        db.executor.retry_limit = 0
        result = db.execute(REVIEW_SQL)
        assert db.query_retries >= 1
        assert "retry-backoff" in db.clock.breakdown()
        assert any("TransientError" in w for w in db.warnings())

        clean = _review_db(predict_workers=4).execute(REVIEW_SQL)
        assert _typed(result.rows) == _typed(clean.rows)

    def test_retry_budget_exhaustion_raises(self):
        # a scheduled fault re-fires for every fresh scheduler scope, so
        # with no scheduler retries the statement can never succeed
        plan = FaultPlan(seed=0).arm("task_error", times=(0,))
        db = _review_db(faults=plan, predict_workers=4, retry_policy=2)
        db.executor.retry_limit = 0
        with pytest.raises(TransientError):
            db.execute(REVIEW_SQL)
        assert db.query_retries == 2
        assert len(db.warnings()) == 2

    def test_no_policy_preserves_fail_fast(self):
        plan = FaultPlan(seed=0).arm("task_error", times=(0,))
        db = _review_db(faults=plan, predict_workers=4)
        db.executor.retry_limit = 0
        with pytest.raises(TransientError):
            db.execute(REVIEW_SQL)
        assert db.query_retries == 0
        assert db.warnings() == []

    def test_non_retryable_errors_never_retried(self):
        db = repro.connect(retry_policy=5)
        with pytest.raises(Exception):
            db.execute("SELECT * FROM missing_table")
        assert db.query_retries == 0
