"""Integration scenarios crossing multiple subsystems end-to-end."""

import numpy as np
import pytest

import repro
from repro.ai.tasks import FineTuneTask
from repro.exec.measure import measure_plan_latency
from repro.learned.qo import LearnedQueryOptimizer
from repro.sql import parse
from repro.workloads.avazu import AvazuGenerator
from repro.workloads.avazu import load_into_db as load_avazu


class TestPredictLifecycle:
    """The paper's Fig. 1 running example, end to end: PREDICT trains a
    model, data drifts, the fine-tune operator adapts it, a new version is
    served — all inside one database instance."""

    def test_full_lifecycle(self):
        db = repro.connect()
        generator = AvazuGenerator(seed=0)
        load_avazu(db, generator, cluster=0, count=3000)

        # 1. PREDICT trains and binds a model
        sql = "PREDICT VALUE OF click_rate FROM avazu TRAIN ON *"
        first = db.execute(sql)
        model_name = first.extra["model"]
        assert db.models.has_model(model_name)
        assert len(db.models.versions(model_name)) == 1

        # 2. the data drifts: append rows from another cluster
        load_avazu(db, generator, cluster=2, count=3000)

        # 3. the fine-tune operator adapts the model incrementally
        db.fine_tune_model("avazu", "click_rate", epochs=1)
        assert len(db.models.versions(model_name)) == 2

        # 4. PREDICT now serves the adapted version without retraining
        second = db.execute(sql)
        assert second.extra["trained_now"] is False
        assert len(second.rows) == 6000

    def test_incremental_update_cheaper_than_retrain(self):
        db = repro.connect()
        generator = AvazuGenerator(seed=0)
        load_avazu(db, generator, cluster=0, count=2000)
        sql = "PREDICT VALUE OF click_rate FROM avazu TRAIN ON *"
        db.execute(sql)
        model_name = db.execute(sql).extra["model"]

        before = db.clock.now
        db.fine_tune_model("avazu", "click_rate", epochs=1)
        finetune_cost = db.clock.now - before

        before = db.clock.now
        db.execute(sql, force_retrain=True)
        retrain_cost = db.clock.now - before
        assert finetune_cost < retrain_cost

    def test_predict_after_dml_changes(self):
        """PREDICT must see rows added through ordinary SQL."""
        db = repro.connect()
        db.execute("CREATE TABLE m (a FLOAT, b FLOAT, y FLOAT)")
        rng = np.random.default_rng(0)
        for _ in range(300):
            a, b = rng.random(2).round(3)
            db.execute(f"INSERT INTO m VALUES ({a}, {b}, {a + b})")
        result = db.execute("PREDICT VALUE OF y FROM m TRAIN ON a, b "
                            "VALUES (0.5, 0.5)")
        assert result.rows[0][-1] == pytest.approx(1.0, abs=0.5)


class TestLearnedQOOnLiveDatabase:
    """The learned optimizer and classical planner on the same instance,
    sharing catalog, buffer pool, and executor."""

    def test_learned_choice_executes_same_answer(self, users_orders_db):
        sql = ("SELECT count(*) FROM users u JOIN orders o "
               "ON u.id = o.user_id WHERE u.age > 25")
        qo = LearnedQueryOptimizer()
        samples = qo.collect_samples(users_orders_db, sql)
        qo.fit(samples, epochs=15)
        learned = qo.execute(users_orders_db, sql)
        classical = users_orders_db.execute(sql)
        assert learned.rows == classical.rows

    def test_buffer_pool_shared_across_paths(self, users_orders_db):
        users_orders_db.execute("SELECT count(*) FROM orders")
        hit_ratio_after_warmup = users_orders_db.buffer_pool.hit_ratio()
        users_orders_db.execute("SELECT count(*) FROM orders")
        assert (users_orders_db.buffer_pool.hit_ratio()
                >= hit_ratio_after_warmup)


class TestVirtualTimeConsistency:
    def test_execution_time_tracks_cost_estimates(self, users_orders_db):
        """For well-estimated plans, measured virtual latency should be
        within an order of magnitude of the optimizer's estimate."""
        select = parse("SELECT count(*) FROM users u JOIN orders o "
                       "ON u.id = o.user_id")
        node = users_orders_db.planner.plan_select(select)
        measured = measure_plan_latency(users_orders_db.executor,
                                        users_orders_db.clock, node)
        assert node.est_cost / 10 < measured.latency < node.est_cost * 10

    def test_clock_monotone_across_statements(self, users_orders_db):
        t0 = users_orders_db.clock.now
        users_orders_db.execute("SELECT count(*) FROM users")
        t1 = users_orders_db.clock.now
        users_orders_db.execute("INSERT INTO users VALUES "
                                "(999, 'x', 1, 'sg')")
        t2 = users_orders_db.clock.now
        assert t0 < t1 < t2


class TestMultipleModelsOneDatabase:
    def test_independent_models_per_target(self):
        db = repro.connect()
        db.execute("CREATE TABLE t (a FLOAT, b FLOAT, y1 FLOAT, y2 INT)")
        rng = np.random.default_rng(0)
        for _ in range(300):
            a, b = rng.random(2).round(3)
            db.execute(f"INSERT INTO t VALUES ({a}, {b}, {a * 2}, "
                       f"{int(a > 0.5)})")
        r1 = db.execute("PREDICT VALUE OF y1 FROM t TRAIN ON a, b")
        r2 = db.execute("PREDICT CLASS OF y2 FROM t TRAIN ON a, b")
        assert r1.extra["model"] != r2.extra["model"]
        assert len(db.models.model_names()) == 2

    def test_different_feature_sets_different_models(self):
        db = repro.connect()
        db.execute("CREATE TABLE t (a FLOAT, b FLOAT, y FLOAT)")
        rng = np.random.default_rng(0)
        for _ in range(200):
            a, b = rng.random(2).round(3)
            db.execute(f"INSERT INTO t VALUES ({a}, {b}, {a + b})")
        r1 = db.execute("PREDICT VALUE OF y FROM t TRAIN ON a")
        r2 = db.execute("PREDICT VALUE OF y FROM t TRAIN ON a, b")
        assert r1.extra["model"] != r2.extra["model"]
