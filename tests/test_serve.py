"""The serving subsystem: parity, micro-batching, model cache, refresh.

The acceptance contract (see ``docs/serving.md``):

* a single PREDICT served through :class:`~repro.serve.PredictServer`
  returns bit-identical rows AND charges bit-identical virtual time to the
  same statement through ``Db.execute`` — at ``predict_workers`` 1, 2, 4;
* compatible concurrent requests coalesce into micro-batches that charge
  strictly less than per-request serving;
* the model cache is a versioned LRU; in-flight batches pin their version
  while a background refresh swaps the serving version atomically at a
  batch boundary.
"""

from __future__ import annotations

import numpy as np
import pytest

import repro
from repro.ai.loader import table_training_set
from repro.common.errors import NeurDBError, ParseError
from repro.exec.expr import RowLayout
from repro.serve import ModelCache, PredictServer
from repro.sql.parser import parse

REVIEW_SQL = ("PREDICT VALUE OF score FROM review "
              "WHERE brand_name = 'special goods' "
              "TRAIN ON f1, f2 WITH brand_name <> 'special goods'")


def _build_review_db(predict_workers: int = 1, n: int = 120):
    db = repro.connect(predict_workers=predict_workers)
    db.execute("CREATE TABLE review (rid INT UNIQUE, brand_name TEXT, "
               "f1 FLOAT, f2 FLOAT, score FLOAT)")
    rng = np.random.default_rng(0)
    for i in range(n):
        brand = "special goods" if i % 5 == 0 else "acme"
        f1, f2 = float(rng.random()), float(rng.random())
        score = "NULL" if i % 5 == 0 else f"{3 * f1 - 2 * f2 + 1:.4f}"
        db.execute(f"INSERT INTO review VALUES ({i}, '{brand}', "
                   f"{f1:.4f}, {f2:.4f}, {score})")
    db.execute("ANALYZE")
    return db


def _typed(rows):
    return [tuple((type(v), v) for v in row) for row in rows]


class TestSingleRequestParity:
    @pytest.mark.parametrize("workers", [1, 2, 4])
    def test_rows_and_charges_bit_identical(self, workers):
        db_direct = _build_review_db(workers)
        before = db_direct.clock.now
        expected = db_direct.execute(REVIEW_SQL)
        direct_cost = db_direct.clock.now - before
        direct_breakdown = db_direct.clock.breakdown()

        db_served = _build_review_db(workers)
        server = PredictServer(db_served)
        before = db_served.clock.now
        request = server.submit(REVIEW_SQL)
        server.drain()
        served_cost = db_served.clock.now - before

        assert request.error is None
        assert request.result.columns == expected.columns
        assert _typed(request.result.rows) == _typed(expected.rows)
        assert request.result.extra["model"] == expected.extra["model"]
        # bit-identical charged virtual time, category by category
        assert served_cost == direct_cost
        assert db_served.clock.breakdown() == direct_breakdown

    def test_inline_values_parity(self):
        db_direct = _build_review_db()
        sql = ("PREDICT VALUE OF score FROM review TRAIN ON f1, f2 "
               "WITH brand_name <> 'special goods' "
               "VALUES (0.9, 0.1), (0.2, 0.8)")
        expected = db_direct.execute(sql)
        db_served = _build_review_db()
        server = PredictServer(db_served)
        request = server.submit(sql)
        server.drain()
        assert _typed(request.result.rows) == _typed(expected.rows)
        assert db_served.clock.now == db_direct.clock.now

    def test_empty_prediction_set_parity(self):
        sql = ("PREDICT VALUE OF score FROM review "
               "WHERE brand_name = 'nobody' "
               "TRAIN ON f1, f2 WITH brand_name <> 'special goods'")
        db_direct = _build_review_db()
        expected = db_direct.execute(sql)
        db_served = _build_review_db()
        server = PredictServer(db_served)
        request = server.submit(sql)
        server.drain()
        assert request.result.rows == [] == expected.rows
        assert request.result.extra == expected.extra
        assert db_served.clock.now == db_direct.clock.now


class TestMicroBatching:
    def test_concurrent_compatible_requests_coalesce(self):
        db = _build_review_db()
        server = PredictServer(db, max_batch_requests=8)
        requests = [server.submit(REVIEW_SQL, at=0.0) for _ in range(5)]
        server.drain()
        assert {r.batch_id for r in requests} == {requests[0].batch_id}
        assert all(r.batched_with == 5 for r in requests)
        stats = server.stats()
        assert stats["batches"] == 1 and stats["requests"] == 5

    def test_batched_charges_less_than_per_request(self):
        db_batched = _build_review_db()
        batched = PredictServer(db_batched, max_batch_requests=8)
        for _ in range(6):
            batched.submit(REVIEW_SQL, at=0.0)
        batched.drain()

        db_serial = _build_review_db()
        serial = PredictServer(db_serial, max_batch_requests=1,
                               model_cache_size=1)
        for _ in range(6):
            serial.submit(REVIEW_SQL, at=0.0)
        serial.drain()

        assert db_batched.clock.now < db_serial.clock.now
        assert batched.stats()["batches"] == 1
        assert serial.stats()["batches"] == 6

    def test_batched_predictions_match_serial(self):
        db_batched = _build_review_db()
        batched = PredictServer(db_batched, max_batch_requests=8)
        batched_requests = [batched.submit(REVIEW_SQL, at=0.0)
                            for _ in range(3)]
        batched.drain()

        db_serial = _build_review_db()
        serial = PredictServer(db_serial, max_batch_requests=1)
        serial_requests = [serial.submit(REVIEW_SQL, at=0.0)
                           for _ in range(3)]
        serial.drain()

        for b, s in zip(batched_requests, serial_requests):
            assert _typed(b.result.rows) == _typed(s.result.rows)

    def test_incompatible_requests_do_not_coalesce(self):
        db = _build_review_db()
        server = PredictServer(db, max_batch_requests=8)
        one = server.submit(REVIEW_SQL, at=0.0)
        # different TRAIN ON list => different model identity
        other = server.submit(
            "PREDICT VALUE OF score FROM review "
            "WHERE brand_name = 'special goods' TRAIN ON f1 "
            "WITH brand_name <> 'special goods'", at=0.0)
        server.drain()
        assert one.batch_id != other.batch_id
        assert one.model_name != other.model_name

    def test_row_cap_defers_requests_without_rescanning(self):
        db = _build_review_db()
        server = PredictServer(db, max_batch_requests=8, max_batch_rows=30)
        requests = [server.submit(REVIEW_SQL, at=0.0) for _ in range(3)]
        server.drain()
        # each request materializes 24 rows; the cap of 30 splits 3
        # requests across >= 2 batches, and everyone still completes
        assert len({r.batch_id for r in requests}) >= 2
        assert all(r.result is not None for r in requests)

    def test_later_arrivals_form_later_batches(self):
        db = _build_review_db()
        server = PredictServer(db, max_batch_requests=8)
        first = server.submit(REVIEW_SQL, at=0.0)
        late = server.submit(REVIEW_SQL, at=1e9)  # far beyond batch one
        server.drain()
        assert first.batch_id != late.batch_id
        assert late.started_at >= 1e9
        assert first.latency < late.arrival

    def test_bind_error_fails_single_request_not_server(self):
        db = _build_review_db()
        server = PredictServer(db)
        bad = server.submit("PREDICT VALUE OF ghost FROM review TRAIN ON *",
                            at=0.0)
        good = server.submit(REVIEW_SQL, at=0.0)
        server.drain()
        assert bad.error is not None and bad.result is None
        assert good.error is None and good.result is not None

    def test_execution_error_fails_batch_not_server(self):
        # a raw evaluator error (lower() on a float) escaping mid-batch
        # must complete the batch as failed — error recorded, queue and
        # later requests (here: a different model identity, so a
        # different batch) intact — never strand requests in limbo
        db = _build_review_db()
        server = PredictServer(db)
        bad = server.submit(
            "PREDICT VALUE OF score FROM review TRAIN ON f1, f2 "
            "WITH lower(f1) = 'x'", at=0.0)
        good = server.submit(
            "PREDICT VALUE OF score FROM review "
            "WHERE brand_name = 'special goods' TRAIN ON f1 "
            "WITH brand_name <> 'special goods'", at=0.0)
        server.drain()
        assert bad.error is not None and bad.completed_at is not None
        assert good.error is None and good.result is not None
        assert not server._pending


class TestModelCache:
    def test_lru_eviction_and_hits(self):
        db = _build_review_db()
        db.execute(REVIEW_SQL)  # register the model
        name = db.catalog.bound_model("review", "score")
        version = db.models.versions(name)[-1]
        cache = ModelCache(db.models, capacity=1)
        cache.get(name, version)
        cache.get(name, version)
        assert cache.hits == 1 and cache.misses == 1

        db.fine_tune_model("review", "score", epochs=1)
        newer = db.models.versions(name)[-1]
        cache.get(name, newer)       # evicts the older snapshot
        assert len(cache) == 1
        assert cache.cached_versions(name) == [newer]
        cache.get(name, version)     # old version still loadable: miss
        assert cache.misses == 3

    def test_cache_hit_skips_model_load_charges(self):
        db = _build_review_db()
        server = PredictServer(db)
        server.submit(REVIEW_SQL, at=0.0)
        server.drain()
        before = db.clock.category_total("model-load")
        server.submit(REVIEW_SQL, at=1e9)
        server.drain()
        assert db.clock.category_total("model-load") == before
        assert server.cache.hits >= 1


class TestRefreshLoop:
    def _drifting_server(self, refresh="auto"):
        db = repro.connect()
        db.execute("CREATE TABLE s (sid INT UNIQUE, a FLOAT, b FLOAT, "
                   "y FLOAT)")
        rng = np.random.default_rng(1)
        self._rng, self._db = rng, db
        self._insert(db, rng, 150, offset=1.0, start=0)
        db.execute("ANALYZE")
        return db, PredictServer(db, refresh=refresh, serving_window=3,
                                 refresh_epochs=2)

    @staticmethod
    def _insert(db, rng, n, offset, start):
        for i in range(start, start + n):
            a, b = float(rng.random()), float(rng.random())
            db.execute(f"INSERT INTO s VALUES ({i}, {a:.4f}, {b:.4f}, "
                       f"{3 * a - 2 * b + offset:.4f})")

    WARM = ("PREDICT VALUE OF y FROM s WHERE sid >= 140 TRAIN ON a, b "
            "WITH sid < 140")
    DRIFTED = ("PREDICT VALUE OF y FROM s WHERE sid >= 150 TRAIN ON a, b "
               "WITH sid < 140")

    def _run_drift(self, server):
        t = 0.0
        for _ in range(6):
            server.submit(self.WARM, at=t)
            t += 0.05
        server.drain()
        self._insert(self._db, self._rng, 100, offset=6.0, start=150)
        for _ in range(10):
            server.submit(self.DRIFTED, at=t)
            t += 0.05
        server.drain()
        return t

    def test_drift_enqueues_background_refresh_and_swaps(self):
        db, server = self._drifting_server()
        t = self._run_drift(server)
        assert db.monitor.drift_count() >= 1
        assert server.refreshes, "drift must enqueue a refresh"
        task = server.refreshes[0]
        assert task.status == "done"
        assert task.version_after == task.version_before + 1
        assert task.trigger is not None
        assert task.started_at >= task.enqueued_at
        # keep serving until the serving timeline passes the completion
        for _ in range(5):
            server.submit(self.DRIFTED, at=t)
            t += 1.0
        server.drain()
        assert task.swapped
        name = server.completed[0].model_name
        assert server.serving_version(name) == task.version_after

    def test_inflight_batches_pin_old_version(self):
        db, server = self._drifting_server()
        self._run_drift(server)
        task = server.refreshes[0]
        # every batch formed before the swap served the pinned version
        pre_swap = [r for r in server.completed
                    if r.started_at is not None
                    and r.started_at < task.completed_at]
        assert pre_swap
        assert all(r.model_version == task.version_before
                   for r in pre_swap if r.model_version is not None)

    def test_refresh_runs_off_the_serving_lanes(self):
        db, server = self._drifting_server()
        self._run_drift(server)
        task = server.refreshes[0]
        # the refresh occupies the background lane, not a serving lane:
        # its cost appears in the refresh lane's busy time only
        assert server.refresh_lane.busy_time() > 0
        assert task.completed_at - task.started_at == pytest.approx(
            server.refresh_lane.busy_time())
        # and serving latency stays orders below the refresh cost
        served = [r.latency for r in server.completed if r.error is None]
        assert min(served) < server.refresh_lane.busy_time()

    def test_manual_mode_never_auto_refreshes(self):
        db, server = self._drifting_server(refresh="manual")
        self._run_drift(server)
        assert db.monitor.drift_count() >= 1  # drift is still detected
        assert server.refreshes == []         # but nothing was enqueued

    def test_manual_refresh_now(self):
        db, server = self._drifting_server(refresh="manual")
        server.submit(self.WARM, at=0.0)
        server.drain()
        task = server.refresh_now("s", "y")
        server.drain()
        assert task.status == "done"
        assert task.version_after is not None

    def test_per_request_knob_overrides_server_policy(self):
        db, server = self._drifting_server(refresh="auto")
        t = 0.0
        for _ in range(6):
            server.submit(self.WARM + " WITH (refresh=manual)", at=t)
            t += 0.05
        server.drain()
        self._insert(self._db, self._rng, 100, offset=6.0, start=150)
        for _ in range(10):
            server.submit(self.DRIFTED, at=t)
            t += 0.05
        server.drain()
        assert server.refreshes == []


class TestSqlRefreshKnob:
    def test_options_clause_parses(self):
        stmt = parse("PREDICT VALUE OF y FROM s TRAIN ON a, b "
                     "WITH (refresh=auto)")
        assert stmt.refresh == "auto"
        assert stmt.train_filter is None

    def test_options_and_filter_in_either_order(self):
        first = parse("PREDICT VALUE OF y FROM s TRAIN ON a, b "
                      "WITH (refresh=manual) WITH sid < 10")
        second = parse("PREDICT VALUE OF y FROM s TRAIN ON a, b "
                       "WITH sid < 10 WITH (refresh=manual)")
        assert first.refresh == second.refresh == "manual"
        assert first.train_filter == second.train_filter

    def test_parenthesized_filter_still_a_filter(self):
        stmt = parse("PREDICT VALUE OF y FROM s TRAIN ON a, b "
                     "WITH (sid < 10)")
        assert stmt.refresh is None
        assert stmt.train_filter is not None

    def test_filter_on_a_column_named_refresh_still_a_filter(self):
        # only a literal auto/manual value engages the options grammar; a
        # training filter over a column that happens to be named refresh
        # keeps parsing as an expression
        for filt in ("refresh = 1", "refresh = 'auto'", "refresh = mode"):
            stmt = parse(f"PREDICT VALUE OF y FROM s TRAIN ON a, b "
                         f"WITH ({filt})")
            assert stmt.refresh is None, filt
            assert stmt.train_filter is not None, filt

    def test_bad_option_values_rejected(self):
        # a non-auto/manual value never engages the options grammar: the
        # clause falls through to the expression parser as a filter
        fallthrough = parse(
            "PREDICT VALUE OF y FROM s WITH (refresh=sometimes)")
        assert fallthrough.refresh is None
        assert fallthrough.train_filter is not None
        with pytest.raises(ParseError):
            parse("PREDICT VALUE OF y FROM s WITH (refresh=auto) "
                  "WITH (refresh=manual)")
        with pytest.raises(ParseError):  # duplicate key inside one clause
            parse("PREDICT VALUE OF y FROM s "
                  "WITH (refresh=auto, refresh=manual)")

    def test_knob_does_not_change_model_identity_or_charges(self):
        db_plain = _build_review_db()
        plain = db_plain.execute(REVIEW_SQL)
        db_knob = _build_review_db()
        knob = db_knob.execute(REVIEW_SQL + " WITH (refresh=auto)")
        assert knob.extra["model"] == plain.extra["model"]
        assert _typed(knob.rows) == _typed(plain.rows)
        assert db_knob.clock.now == db_plain.clock.now


class TestMorselMaterializationParity:
    def test_training_set_identical_across_workers(self):
        db = _build_review_db()
        heap = db.catalog.table("review")
        base = table_training_set(heap, ["f1", "f2"], "score")
        for workers in (2, 4):
            parallel = table_training_set(heap, ["f1", "f2"], "score",
                                          workers=workers)
            assert np.array_equal(parallel.targets, base.targets)
            for a, b in zip(parallel.columns, base.columns):
                assert list(a) == list(b)

    def test_charged_totals_parity_across_workers(self):
        costs = {}
        for workers in (1, 2, 4):
            db = _build_review_db()
            heap = db.catalog.table("review")
            before = db.clock.now
            table_training_set(heap, ["f1", "f2"], "score", clock=db.clock,
                               workers=workers)
            costs[workers] = db.clock.now - before
        assert costs[2] == pytest.approx(costs[1], rel=1e-9)
        assert costs[4] == pytest.approx(costs[1], rel=1e-9)
        assert costs[1] > 0  # materialization is charged work now

    def test_failing_scan_keeps_partial_charges_on_all_worker_counts(self):
        # the serial engines' contract: a failing query leaves its
        # charges behind — the morsel-parallel materialization included
        from repro.exec.expr import compile_predicate_batch
        costs = {}
        for workers in (1, 4):
            db = _build_review_db()
            heap = db.catalog.table("review")
            layout = RowLayout([("review", c.name)
                                for c in heap.schema.columns])
            bad = compile_predicate_batch(
                parse("SELECT 1 FROM review WHERE lower(f1) = 'x'").where,
                layout)
            before = db.clock.now
            with pytest.raises(AttributeError):
                table_training_set(heap, ["f1", "f2"], "score",
                                   block_predicate=bad, clock=db.clock,
                                   workers=workers)
            costs[workers] = db.clock.now - before
        assert costs[1] > 0
        assert costs[4] > 0

    @pytest.mark.parametrize("workers", [2, 4])
    def test_db_predict_rows_identical_across_workers(self, workers):
        base = _build_review_db(1).execute(REVIEW_SQL)
        got = _build_review_db(workers).execute(REVIEW_SQL)
        assert _typed(got.rows) == _typed(base.rows)


class TestServerValidation:
    def test_rejects_non_predict(self):
        db = _build_review_db(n=10)
        server = PredictServer(db)
        with pytest.raises(NeurDBError):
            server.submit("SELECT * FROM review")

    def test_rejects_out_of_order_arrivals(self):
        db = _build_review_db(n=10)
        server = PredictServer(db)
        server.submit(REVIEW_SQL, at=5.0)
        with pytest.raises(NeurDBError):
            server.submit(REVIEW_SQL, at=1.0)

    def test_default_arrival_carries_across_drains(self):
        # the default arrival is the latest ever admitted, not 0.0: a
        # request submitted after a drain must not report phantom
        # queueing latency
        db = _build_review_db()
        server = PredictServer(db)
        server.submit(REVIEW_SQL, at=100.0)
        server.drain()
        late = server.submit(REVIEW_SQL)
        server.drain()
        assert late.arrival == 100.0
        assert late.latency < 1.0
        with pytest.raises(NeurDBError):
            server.submit(REVIEW_SQL, at=50.0)  # behind served traffic

    def test_rejects_bad_config(self):
        db = _build_review_db(n=10)
        with pytest.raises(ValueError):
            PredictServer(db, refresh="never")
        with pytest.raises(ValueError):
            PredictServer(db, max_batch_requests=0)
        with pytest.raises(ValueError):
            ModelCache(db.models, capacity=0)


class TestRefreshWindow:
    """Recency-weighted refresh data: fine-tunes train on a sliding
    window of the table's most recent rows (``refresh_window`` on
    ``connect()`` / ``PredictServer``), default full-table."""

    @staticmethod
    def _spy_fine_tune(db, captured):
        original = db.ai_engine.fine_tune

        def spy(task, data, targets):
            captured.append(len(data))
            return original(task, data, targets)

        db.ai_engine.fine_tune = spy

    def test_training_set_tail(self):
        from repro.ai.loader import ColumnTrainingSet
        data = ColumnTrainingSet(
            [np.array(list(range(10)), dtype=object)],
            np.arange(10, dtype=np.float64))
        tail = data.tail(4)
        assert len(tail) == 4
        assert tail.rows() == [(6,), (7,), (8,), (9,)]
        assert np.array_equal(tail.targets, np.array([6.0, 7.0, 8.0, 9.0]))
        assert data.tail(10) is data        # window covers everything
        assert data.tail(99) is data
        with pytest.raises(ValueError):
            data.tail(0)

    def test_connect_knob_bounds_finetune_data(self):
        db = repro.connect(refresh_window=8)
        db.execute("CREATE TABLE p (a FLOAT, b FLOAT, y FLOAT)")
        for i in range(30):
            db.execute(f"INSERT INTO p VALUES ({i}.5, {i + 1}.0, {i * 0.1})")
        db.execute("PREDICT VALUE OF y FROM p TRAIN ON a, b")
        captured: list[int] = []
        self._spy_fine_tune(db, captured)
        db.fine_tune_model("p", "y")
        assert captured == [8]
        db.fine_tune_model("p", "y", window_rows=5)  # per-call override
        assert captured == [8, 5]
        db.fine_tune_model("p", "y", window_rows=1000)  # window > table
        assert captured == [8, 5, 30]

    def test_default_stays_full_table(self):
        db = _build_review_db(n=40)
        db.execute(REVIEW_SQL)
        captured: list[int] = []
        self._spy_fine_tune(db, captured)
        db.fine_tune_model("review", "score")
        # full table minus the NULL-score rows (every 5th)
        assert captured == [32]

    def test_server_refresh_uses_window(self):
        db = _build_review_db(n=60)
        db.execute(REVIEW_SQL)
        captured: list[int] = []
        self._spy_fine_tune(db, captured)
        server = PredictServer(db, refresh_window=10)
        server.refresh_now("review", "score")
        server.drain()
        task = server.refreshes[-1]
        assert task.status == "done"
        assert captured == [10]

    def test_server_rejects_bad_window(self):
        db = _build_review_db(n=10)
        with pytest.raises(ValueError):
            PredictServer(db, refresh_window=0)
        with pytest.raises(ValueError):
            repro.connect(refresh_window=0)

    def test_tail_scan_reads_only_trailing_pages(self):
        """The windowed refresh scans only the pages covering the window
        (plus NULL-target widening), not the full history — identical
        rows to full-scan-then-tail, far smaller scan charge."""
        from repro.ai.loader import table_training_set
        from repro.common.simtime import CostModel
        db = repro.connect(refresh_window=40)
        db.execute("CREATE TABLE big (a FLOAT, y FLOAT)")
        heap = db.catalog.table("big")
        rows = 1500
        for i in range(rows):
            heap.insert((float(i), None if i % 7 == 0 else i * 0.01))
        db.execute("ANALYZE")
        db.execute("PREDICT VALUE OF y FROM big TRAIN ON a")
        captured: list = []
        original = db.ai_engine.fine_tune
        db.ai_engine.fine_tune = lambda task, data, targets: (
            captured.append(data), original(task, data, targets))[1]
        before = db.clock.category_total("predict-materialize")
        db.fine_tune_model("big", "y")
        scanned = db.clock.category_total("predict-materialize") - before
        full = table_training_set(heap, ["a"], "y")
        assert captured[0].rows() == full.tail(40).rows()
        # scan charge tracks the window, not the 1500-row history
        assert scanned < rows * CostModel.TUPLE_CPU * 0.5

    def test_tail_scan_widens_past_null_targets(self):
        """A tail whose trailing rows are mostly NULL targets widens
        backward until the window is filled — same result as tailing the
        full-history training set."""
        from repro.ai.loader import table_training_set, table_training_set_tail
        db = repro.connect()
        db.execute("CREATE TABLE holey (a FLOAT, y FLOAT)")
        heap = db.catalog.table("holey")
        for i in range(600):
            # the last 300 rows are almost all NULL targets
            target = None if (i >= 300 and i % 10 != 0) else i * 1.0
            heap.insert((float(i), target))
        data = table_training_set_tail(heap, ["a"], "y", 50)
        full = table_training_set(heap, ["a"], "y")
        assert data.rows() == full.tail(50).rows()
        assert len(data) == 50
        # window larger than all qualifying rows: everything, no error
        everything = table_training_set_tail(heap, ["a"], "y", 10_000)
        assert everything.rows() == full.rows()
