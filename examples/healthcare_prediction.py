"""Healthcare disease-progression prediction (Workload H, Listing 2).

Shows the paper's classification SQL verbatim (PREDICT CLASS OF ... VALUES),
plus the MSelection operator choosing among model families by validation
quality — one of the additional AI operators §3 describes.

Run with:  python examples/healthcare_prediction.py
"""

import numpy as np

import repro
from repro.ai.tasks import ModelSelectionTask
from repro.nn.losses import auc_score
from repro.workloads.diabetes import DiabetesGenerator, load_into_db


def main() -> None:
    db = repro.connect()
    generator = DiabetesGenerator(seed=0)
    load_into_db(db, generator, count=3000)
    print(f"diabetes table: "
          f"{db.execute('SELECT count(*) FROM diabetes').scalar()} rows, "
          f"{len(db.catalog.table('diabetes').schema)} columns")

    # -- Listing 2: classification with inline VALUES ----------------------
    result = db.execute(
        "PREDICT CLASS OF outcome FROM diabetes "
        "TRAIN ON pregnancies, glucose, blood_pressure "
        "VALUES (6, 148, 72), (1, 85, 66), (8, 183, 64)")
    print("\nListing-2 style predictions (pregnancies, glucose, bp -> class):")
    for row in result.rows:
        print(f"  {row[:-1]} -> outcome {row[-1]}")

    # -- full-table prediction with TRAIN ON * and quality measurement ------
    result = db.execute(
        "PREDICT CLASS OF outcome FROM diabetes TRAIN ON *",
        force_retrain=True)
    probabilities = result.extra["probabilities"]
    outcome_idx = db.catalog.table("diabetes").schema.index_of("outcome")
    truth = [row[outcome_idx]
             for _, row in db.catalog.table("diabetes").scan()]
    auc = auc_score(np.asarray(probabilities), np.asarray(truth))
    print(f"\nfull-table PREDICT: AUC against ground truth = {auc:.3f}")

    # -- the MSelection operator: pick the best model family ----------------
    heap = db.catalog.table("diabetes")
    feature_cols = [c for c in heap.schema.non_unique_column_names()
                    if c != "outcome"]
    idx = [heap.schema.index_of(c) for c in feature_cols]
    rows, labels = [], []
    for _, row in heap.scan():
        rows.append(tuple(row[i] for i in idx))
        labels.append(float(row[outcome_idx]))
    selection = db.ai_engine.select_model(
        ModelSelectionTask(model_name="diabetes_selector",
                           task_type="classification"),
        rows[:1500], labels[:1500], steps=20)
    print("\nMSelection operator scores (validation AUC):")
    for name, score in sorted(selection.details["scores"].items(),
                              key=lambda kv: -kv[1]):
        marker = " <- selected" if name == selection.selected_model else ""
        print(f"  {name:10s} {score:.3f}{marker}")


if __name__ == "__main__":
    main()
