"""Quickstart: an in-process NeurDB doing SQL and in-database AI analytics.

Run with:  python examples/quickstart.py
"""

import numpy as np

import repro


def main() -> None:
    db = repro.connect()

    # -- plain SQL works as expected -----------------------------------------
    db.execute("CREATE TABLE review (rid INT UNIQUE, brand_name TEXT, "
               "price FLOAT, rating_count INT, score FLOAT)")

    rng = np.random.default_rng(7)
    for i in range(500):
        brand = "special goods" if i % 5 == 0 else f"brand{i % 7}"
        price = round(float(rng.uniform(5, 120)), 2)
        rating_count = int(rng.integers(1, 500))
        # ground truth: cheap, much-reviewed products score higher
        score = round(5.0 - price / 40 + np.log1p(rating_count) / 3
                      + float(rng.normal(0, 0.2)), 2)
        if brand == "special goods":
            db.execute(f"INSERT INTO review VALUES ({i}, '{brand}', "
                       f"{price}, {rating_count}, NULL)")
        else:
            db.execute(f"INSERT INTO review VALUES ({i}, '{brand}', "
                       f"{price}, {rating_count}, {score})")
    db.execute("ANALYZE")

    total = db.execute("SELECT count(*) FROM review").scalar()
    top = db.execute("SELECT brand_name, avg(score) AS s FROM review "
                     "WHERE score IS NOT NULL GROUP BY brand_name "
                     "ORDER BY s DESC LIMIT 3")
    print(f"{total} reviews loaded; top brands by score:")
    for brand, avg_score in top:
        print(f"  {brand:14s} {avg_score:.2f}")

    # -- the paper's PREDICT extension (Listing 1) -----------------------------
    # 'special goods' has no scores; train on everything else and fill them
    result = db.execute(
        "PREDICT VALUE OF score FROM review "
        "WHERE brand_name = 'special goods' "
        "TRAIN ON * WITH brand_name <> 'special goods'")
    predictions = [row[-1] for row in result.rows]
    print(f"\nPREDICT filled {len(predictions)} missing scores "
          f"(model {result.extra['model']!r}, "
          f"trained_now={result.extra['trained_now']})")
    print(f"predicted score range: {min(predictions):.2f} "
          f"... {max(predictions):.2f}")

    # the model is managed inside the database: a second PREDICT reuses it
    again = db.execute(
        "PREDICT VALUE OF score FROM review "
        "WHERE brand_name = 'special goods' "
        "TRAIN ON * WITH brand_name <> 'special goods'")
    print(f"second call reused the stored model "
          f"(trained_now={again.extra['trained_now']})")

    # -- look under the hood ----------------------------------------------------
    from repro.sql import parse
    plan = db.planner.plan_select(parse(
        "SELECT brand_name, count(*) FROM review "
        "WHERE price < 50 GROUP BY brand_name"))
    print("\nquery plan for an analytics query:")
    print(plan.pretty())
    print(f"\nvirtual time spent so far: {db.clock.now:.4f}s "
          f"(breakdown: { {k: round(v, 4) for k, v in sorted(db.clock.breakdown().items()) if v > 1e-4} })")


if __name__ == "__main__":
    main()
