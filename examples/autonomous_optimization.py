"""Autonomous DBMS optimization: the two fast-adaptive learned components.

Part 1 — learned concurrency control: runs the YCSB micro-benchmark under
PostgreSQL-style SSI and under NeurDB(CC), then lets the two-phase
(filter/refine) adaptation tune the decision model online.

Part 2 — learned query optimizer: builds the synthetic STATS database,
drifts it, and compares the classical (stale-statistics) planner's choice
against the learned optimizer conditioned on live system conditions.

Run with:  python examples/autonomous_optimization.py
"""

import numpy as np

from repro.exec.measure import measure_plan_latency
from repro.learned.cc import (
    DecisionModel,
    LearnedCCPolicy,
    TwoPhaseAdapter,
)
from repro.learned.qo import LearnedQueryOptimizer
from repro.sql import parse
from repro.txnsim import SerializableSnapshotIsolation, TxnSimulator
from repro.workloads.stats import QUERIES, StatsGenerator, StatsScale, build_stats_db
from repro.workloads.ycsb import YCSBConfig, YCSBWorkload


def learned_concurrency_control() -> None:
    print("=" * 68)
    print("Part 1 — learned concurrency control (YCSB, 16 threads)")
    workload = YCSBWorkload(YCSBConfig(records=1_000_000, zipf_theta=0.9))

    ssi = TxnSimulator(16, SerializableSnapshotIsolation(), workload,
                       seed=1).run(0.02)
    print(f"PostgreSQL (SSI):     {ssi.throughput:9,.0f} txns/vs, "
          f"abort rate {ssi.abort_rate:.1%}")

    before = TxnSimulator(16, LearnedCCPolicy(), workload, seed=1).run(0.02)
    print(f"NeurDB(CC) untuned:   {before.throughput:9,.0f} txns/vs")

    def evaluate(params: np.ndarray) -> float:
        policy = LearnedCCPolicy(DecisionModel(params.copy()))
        return TxnSimulator(16, policy, workload,
                            seed=2).run(0.008).throughput

    adapter = TwoPhaseAdapter(candidates=6, sigma=2.0, refine_steps=4,
                              refine_sigma=0.5, seed=0)
    params, report = adapter.adapt(DecisionModel.default_params(), evaluate)
    after = TxnSimulator(16, LearnedCCPolicy(DecisionModel(params)),
                         workload, seed=1).run(0.02)
    print(f"NeurDB(CC) adapted:   {after.throughput:9,.0f} txns/vs "
          f"({after.throughput / ssi.throughput:.2f}x PostgreSQL; "
          f"{report.evaluations} evaluation slices: "
          f"filter {report.filtered_reward:,.0f} -> "
          f"refine {report.refined_reward:,.0f})")


def learned_query_optimization() -> None:
    print("\n" + "=" * 68)
    print("Part 2 — learned query optimizer (STATS under severe drift)")
    scale = StatsScale(users=300, posts=900, comments=1500, votes=2200,
                       badges=600, posthistory=1100, postlinks=250, tags=60)

    # train the learned optimizer on several synthetic distributions
    from repro.bench.fig8 import pretrain_neurdb_qo
    print("pre-training the dual-module model across synthetic "
          "distributions ...")
    learned = pretrain_neurdb_qo(scale, distributions=2, epochs=20)

    db = build_stats_db(scale=scale, seed=0)
    StatsGenerator(scale=scale, seed=0).apply_drift(db, "severe")
    # no re-ANALYZE: the classical planner keeps stale statistics

    print(f"{'query':6s} {'PostgreSQL':>12s} {'NeurDB':>12s}  winner")
    totals = {"pg": 0.0, "neurdb": 0.0}
    for i, sql in enumerate(QUERIES, 1):
        select = parse(sql)
        pg_plan = db.planner.plan_select(select)
        pg = measure_plan_latency(db.executor, db.clock, pg_plan,
                                  cap_virtual=0.25).latency
        chosen, _ = learned.choose_plan(db, select)
        nd = measure_plan_latency(db.executor, db.clock, chosen,
                                  cap_virtual=0.25).latency
        totals["pg"] += pg
        totals["neurdb"] += nd
        winner = "NeurDB" if nd < pg * 0.99 else (
            "PostgreSQL" if pg < nd * 0.99 else "tie")
        print(f"Q{i:<5d} {pg * 1e3:10.3f}ms {nd * 1e3:10.3f}ms  {winner}")
    improvement = 1 - totals["neurdb"] / totals["pg"]
    print(f"\ntotal latency: PostgreSQL {totals['pg'] * 1e3:.2f}ms, "
          f"NeurDB {totals['neurdb'] * 1e3:.2f}ms "
          f"({improvement:+.1%} for NeurDB)")


if __name__ == "__main__":
    learned_concurrency_control()
    learned_query_optimization()
