"""E-commerce click-through-rate prediction under data drift (Workload E).

Reproduces the paper's motivating scenario: an e-commerce database whose
data drifts (here: the Avazu-style cluster switch), with the monitor
detecting the drift and the FineTune operator adapting the model by
retraining only its head layers — persisting a new model *version* that
shares the frozen layers with its predecessor (Fig. 3).

Run with:  python examples/ecommerce_ctr.py
"""

import numpy as np

from repro.ai.armnet import ARMNet
from repro.ai.engine import AIEngine
from repro.ai.model_manager import ModelManager
from repro.ai.monitor import Monitor
from repro.ai.tasks import FineTuneTask, InferenceTask, TrainTask
from repro.workloads.avazu import FIELD_COUNT, AvazuGenerator


def main() -> None:
    generator = AvazuGenerator(seed=0)
    engine = AIEngine(model_manager=ModelManager())
    monitor = Monitor()
    monitor.register("ctr-loss", threshold=0.2, window=4, cooldown=8)

    # 1. initial training on cluster C1 through the streaming protocol
    initial = generator.generate(cluster=0, count=16_384)
    train = engine.train(
        TrainTask(model_name="ctr", field_count=FIELD_COUNT, epochs=3,
                  batch_size=256),
        initial.rows, initial.labels)
    print(f"trained on C1: {train.samples_processed} samples, "
          f"loss {train.losses[0]:.3f} -> {train.losses[-1]:.3f}, "
          f"virtual time {train.virtual_seconds:.3f}s "
          f"({train.training_throughput:,.0f} samples/vs)")

    for loss in train.losses:
        monitor.observe("ctr-loss", loss)

    # 2. the workload drifts to cluster C2: the serving model goes stale
    drifted = generator.generate(cluster=1, count=4096)
    model = engine.models.load_model("ctr")
    from repro.nn.losses import bce_with_logits
    stale_loss = bce_with_logits(
        model.forward_raw(drifted.rows), drifted.labels).item()
    print(f"\ncluster switch C1 -> C2: serving loss jumps to "
          f"{stale_loss:.3f}")
    event = None
    for chunk in range(0, 4096, 512):
        logits = model.forward_raw(drifted.rows[chunk:chunk + 512])
        loss = bce_with_logits(logits,
                               drifted.labels[chunk:chunk + 512]).item()
        event = monitor.observe("ctr-loss", loss) or event
    print(f"monitor drift event fired: {event is not None}")

    # 3. incremental update: fine-tune the head layers only (Fig. 3)
    tune = engine.fine_tune(
        FineTuneTask(model_name="ctr", tune_last_layers=2, epochs=5,
                     batch_size=256, learning_rate=3e-2),
        drifted.rows, drifted.labels)
    print(f"\nfine-tuned layers {tune.details['tuned_layers']} as version "
          f"{tune.model_version} in {tune.virtual_seconds:.4f} virtual s")

    adapted = engine.models.load_model("ctr")
    adapted_loss = bce_with_logits(
        adapted.forward_raw(drifted.rows), drifted.labels).item()
    print(f"serving loss after incremental update: {adapted_loss:.3f} "
          f"(was {stale_loss:.3f})")

    # 4. versioned model storage: both versions remain addressable
    versions = engine.models.versions("ctr")
    print(f"\nmodel versions in storage: {versions}")
    print(f"layer rows persisted: {engine.models.layer_rows('ctr')} "
          f"(a full snapshot per version would need "
          f"{len(versions) * len(ARMNet.LAYER_NAMES)})")
    old = engine.models.load_model("ctr", timestamp=versions[0])
    old_loss = bce_with_logits(
        old.forward_raw(drifted.rows), drifted.labels).item()
    print(f"time-travel to version {versions[0]}: loss on C2 data "
          f"{old_loss:.3f} (the stale model, reconstructed)")

    # 5. inference through the engine (what a PREDICT query invokes)
    inference = engine.infer(InferenceTask(model_name="ctr"),
                             drifted.rows[:5])
    print(f"\nsample click probabilities: "
          f"{[round(float(p), 3) for p in inference.predictions]}")


if __name__ == "__main__":
    main()
