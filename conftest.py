"""Repo-level pytest configuration.

Tier-1 verification (``pytest -x -q``) must stay fast, so the figure
benchmarks under ``benchmarks/`` carry a ``bench`` marker and are
deselected by default; opt in with ``--bench`` (or ``-m bench``).  The
marker itself is attached in ``benchmarks/conftest.py``.
"""

from __future__ import annotations


def pytest_addoption(parser):
    parser.addoption(
        "--bench", action="store_true", default=False,
        help="run the benchmark suite (tests marked 'bench')")
